// The constructive EXOR check of Fig. 4: validated for completeness against
// brute force (when it reports non-decomposable, no component pair exists)
// and for soundness (returned component ISFs compose back into the spec for
// EVERY choice of compatible covers).
#include "bidec/exor_check.h"

#include <gtest/gtest.h>

#include <random>

#include "brute_force.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

using testing::BruteGate;
using testing::bdd_to_mask;
using testing::brute_force_decomposable;
using testing::functions_independent_of;

Isf random_isf(BddManager& mgr, unsigned nv, std::mt19937_64& rng, double dc_density) {
  const TruthTable on = TruthTable::random(nv, rng, 0.5);
  const TruthTable dc = TruthTable::random(nv, rng, dc_density);
  return Isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
}

/// Soundness: every compatible pair of covers of the returned component ISFs
/// EXORs into a function compatible with the original ISF.
void expect_components_sound(BddManager& mgr, const Isf& isf, unsigned nv,
                             std::span<const unsigned> xa, std::span<const unsigned> xb,
                             const ExorComponents& comps) {
  const std::uint16_t q = bdd_to_mask(mgr, isf.q(), nv);
  const std::uint16_t r = bdd_to_mask(mgr, isf.r(), nv);
  const std::uint16_t qa = bdd_to_mask(mgr, comps.a.q(), nv);
  const std::uint16_t ra = bdd_to_mask(mgr, comps.a.r(), nv);
  const std::uint16_t qb = bdd_to_mask(mgr, comps.b.q(), nv);
  const std::uint16_t rb = bdd_to_mask(mgr, comps.b.r(), nv);
  for (const std::uint16_t fa : functions_independent_of(nv, xb)) {
    if ((qa & ~fa) != 0 || (fa & ra) != 0) continue;  // not a cover of A
    for (const std::uint16_t fb : functions_independent_of(nv, xa)) {
      if ((qb & ~fb) != 0 || (fb & rb) != 0) continue;
      const std::uint16_t f = fa ^ fb;
      EXPECT_EQ(q & ~f, 0) << "on-set not covered";
      EXPECT_EQ(f & r, 0) << "off-set violated";
      if ((q & ~f) != 0 || (f & r) != 0) return;  // stop flooding on failure
    }
  }
}

/// The component ISFs must actually be restricted to their variable sets.
void expect_support_respected(BddManager& mgr, std::span<const unsigned> xa,
                              std::span<const unsigned> xb, const ExorComponents& comps) {
  for (const unsigned v : xb) {
    EXPECT_FALSE(mgr.depends_on(comps.a.q(), v));
    EXPECT_FALSE(mgr.depends_on(comps.a.r(), v));
  }
  for (const unsigned v : xa) {
    EXPECT_FALSE(mgr.depends_on(comps.b.q(), v));
    EXPECT_FALSE(mgr.depends_on(comps.b.r(), v));
  }
}

class ExorCheckVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExorCheckVsBruteForce, SingletonSets) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.25);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      const auto comps = check_exor_bidecomp(isf, xa, xb);
      const bool brute = brute_force_decomposable(mgr, isf, nv, xa, xb, BruteGate::kExor);
      // Completeness: if brute force finds a decomposition the algorithm
      // must too, and vice versa.
      EXPECT_EQ(comps.has_value(), brute) << "xa=" << a << " xb=" << b;
      if (comps) {
        expect_support_respected(mgr, xa, xb, *comps);
        expect_components_sound(mgr, isf, nv, xa, xb, *comps);
      }
    }
  }
}

TEST_P(ExorCheckVsBruteForce, MultiVariableSets) {
  std::mt19937_64 rng(GetParam() + 500);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.3);
  const unsigned xa[] = {0, 1}, xb[] = {2};
  const auto comps = check_exor_bidecomp(isf, xa, xb);
  EXPECT_EQ(comps.has_value(),
            brute_force_decomposable(mgr, isf, nv, xa, xb, BruteGate::kExor));
  if (comps) {
    expect_support_respected(mgr, xa, xb, *comps);
    expect_components_sound(mgr, isf, nv, xa, xb, *comps);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExorCheckVsBruteForce,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(ExorCheck, ParityDecomposesWithAnySplit) {
  BddManager mgr(6);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 6; ++v) parity ^= mgr.var(v);
  const Isf isf = Isf::from_csf(parity);
  const unsigned xa[] = {0, 1, 2}, xb[] = {3, 4, 5};
  const auto comps = check_exor_bidecomp(isf, xa, xb);
  ASSERT_TRUE(comps.has_value());
  // Components must be parity functions of their own halves (up to
  // complement): check A's cover xor B's cover equals the original.
  const Bdd fa = comps->a.any_cover();
  const Bdd fb = comps->b.any_cover();
  EXPECT_EQ(fa ^ fb, parity);
}

TEST(ExorCheck, RejectsAndFunction) {
  BddManager mgr(4);
  const Isf isf = Isf::from_csf(mgr.var(0) & mgr.var(1) & mgr.var(2) & mgr.var(3));
  const unsigned xa[] = {0}, xb[] = {1};
  EXPECT_FALSE(check_exor_bidecomp(isf, xa, xb).has_value());
}

TEST(ExorCheck, SharedVariablesAllowed) {
  // F = (a ^ b) with shared c as an unused common variable and a don't-care
  // rich interval: decomposable with xa={a}, xb={b}.
  BddManager mgr(3);
  const Bdd f = mgr.var(0) ^ mgr.var(1);
  const Isf isf = Isf::from_csf(f);
  const unsigned xa[] = {0}, xb[] = {1};
  const auto comps = check_exor_bidecomp(isf, xa, xb);
  ASSERT_TRUE(comps.has_value());
  EXPECT_EQ(comps->a.any_cover() ^ comps->b.any_cover(), f);
}

TEST(ExorCheck, FullDontCareIsTriviallyDecomposable) {
  BddManager mgr(4);
  const Isf isf(mgr.bdd_false(), mgr.bdd_false());
  const unsigned xa[] = {0}, xb[] = {1};
  const auto comps = check_exor_bidecomp(isf, xa, xb);
  ASSERT_TRUE(comps.has_value());
  EXPECT_TRUE(comps->a.q().is_false());
  EXPECT_TRUE(comps->b.q().is_false());
}

}  // namespace
}  // namespace bidec
