// The CDCL core: propagation, learning, restarts, assumptions, budgets —
// cross-checked against brute-force enumeration on random 3-SAT instances
// and on the classic pigeonhole family.
#include "sat/solver.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace bidec::sat {
namespace {

using Result = Solver::Result;

Lit pos(Var v) { return mk_lit(v); }
Lit neg(Var v) { return mk_lit(v, true); }

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, SingleUnitClause) {
  Solver s;
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x)}));
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(x));
}

TEST(SatSolver, ContradictingUnitsAreUnsatWithoutSearch) {
  Solver s;
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x)}));
  EXPECT_FALSE(s.add_clause({neg(x)}));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, TautologyAndDuplicatesAreNormalized) {
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x), neg(x), pos(y)}));  // tautology: no-op
  ASSERT_TRUE(s.add_clause({pos(y), pos(y), pos(y)}));  // collapses to unit
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(y));
}

TEST(SatSolver, PropagationChain) {
  // x0 -> x1 -> ... -> x9, with x0 asserted.
  Solver s;
  std::vector<Var> x;
  for (int i = 0; i < 10; ++i) x.push_back(s.new_var());
  ASSERT_TRUE(s.add_clause({pos(x[0])}));
  for (int i = 0; i + 1 < 10; ++i) ASSERT_TRUE(s.add_clause({neg(x[i]), pos(x[i + 1])}));
  ASSERT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.model_value(x[i])) << i;
}

TEST(SatSolver, SmallUnsatCore) {
  // (x | y) & (x | ~y) & (~x | y) & (~x | ~y) is unsatisfiable.
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x), pos(y)}));
  ASSERT_TRUE(s.add_clause({pos(x), neg(y)}));
  ASSERT_TRUE(s.add_clause({neg(x), pos(y)}));
  s.add_clause({neg(x), neg(y)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes, no sharing.
// Unsatisfiable, and famously hard for resolution — exercises learning and
// restarts well beyond what unit propagation can settle.
void add_php(Solver& s, unsigned pigeons, unsigned holes) {
  std::vector<std::vector<Var>> p(pigeons);
  for (unsigned i = 0; i < pigeons; ++i) {
    for (unsigned j = 0; j < holes; ++j) p[i].push_back(s.new_var());
  }
  for (unsigned i = 0; i < pigeons; ++i) {
    std::vector<Lit> at_least;
    for (unsigned j = 0; j < holes; ++j) at_least.push_back(pos(p[i][j]));
    s.add_clause(std::move(at_least));
  }
  for (unsigned j = 0; j < holes; ++j) {
    for (unsigned i1 = 0; i1 < pigeons; ++i1) {
      for (unsigned i2 = i1 + 1; i2 < pigeons; ++i2) {
        s.add_clause({neg(p[i1][j]), neg(p[i2][j])});
      }
    }
  }
}

TEST(SatSolver, PigeonholeUnsat) {
  for (const unsigned holes : {3u, 4u, 5u}) {
    Solver s;
    add_php(s, holes + 1, holes);
    EXPECT_EQ(s.solve(), Result::kUnsat) << "PHP(" << holes + 1 << "," << holes << ")";
    if (holes == 5) {
      EXPECT_GT(s.stats().conflicts, 0u);
    }
  }
}

TEST(SatSolver, PigeonholeSatWhenHolesSuffice) {
  Solver s;
  add_php(s, 4, 4);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  Solver s;
  add_php(s, 8, 7);  // hard enough that 5 conflicts cannot decide it
  s.set_conflict_budget(5);
  EXPECT_EQ(s.solve(), Result::kUnknown);
  s.set_conflict_budget(0);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, AssumptionsFlipVerdictWithoutMutation) {
  // (x | y), assume ~x ~y -> UNSAT; solver still SAT afterwards.
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x), pos(y)}));
  EXPECT_EQ(s.solve({neg(x), neg(y)}), Result::kUnsat);
  const std::vector<Lit>& core = s.conflict();
  EXPECT_FALSE(core.empty());
  EXPECT_LE(core.size(), 2u);
  EXPECT_EQ(s.solve({neg(x)}), Result::kSat);
  EXPECT_TRUE(s.model_value(y));
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, IncrementalClauseAdditionBetweenSolves) {
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x), pos(y)}));
  ASSERT_EQ(s.solve(), Result::kSat);
  ASSERT_TRUE(s.add_clause({neg(x)}));
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.model_value(x));
  EXPECT_TRUE(s.model_value(y));
  s.add_clause({neg(y)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, FailedAssumptionIsReported) {
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  const Var z = s.new_var();
  ASSERT_TRUE(s.add_clause({neg(x), pos(y)}));  // x -> y
  ASSERT_TRUE(s.add_clause({neg(y), pos(z)}));  // y -> z
  ASSERT_EQ(s.solve({pos(x), neg(z)}), Result::kUnsat);
  // The conflict must mention only (a subset of) the assumptions.
  for (const Lit l : s.conflict()) {
    EXPECT_TRUE(l == pos(x) || l == neg(z) || l == ~pos(x) || l == ~neg(z));
  }
}

// Reference brute-force check for random instances.
bool brute_force_sat(unsigned num_vars, const std::vector<std::vector<Lit>>& clauses) {
  for (std::uint32_t m = 0; m < (1u << num_vars); ++m) {
    bool all = true;
    for (const std::vector<Lit>& c : clauses) {
      bool any = false;
      for (const Lit l : c) any |= (((m >> l.var()) & 1u) != 0) != l.negated();
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(SatSolver, RandomThreeSatMatchesBruteForce) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 200; ++round) {
    const unsigned nv = 4 + static_cast<unsigned>(rng() % 7);  // 4..10 vars
    // Around the phase-transition density so both verdicts occur.
    const unsigned nc = static_cast<unsigned>(4.3 * nv) + static_cast<unsigned>(rng() % 5);
    Solver s;
    std::vector<Var> vars;
    for (unsigned v = 0; v < nv; ++v) vars.push_back(s.new_var());
    std::vector<std::vector<Lit>> clauses;
    for (unsigned c = 0; c < nc; ++c) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k) {
        cl.push_back(mk_lit(vars[rng() % nv], (rng() & 1) != 0));
      }
      clauses.push_back(cl);
      s.add_clause(std::move(cl));
    }
    const bool expected = brute_force_sat(nv, clauses);
    const Result got = s.solve();
    ASSERT_EQ(got, expected ? Result::kSat : Result::kUnsat) << "round " << round;
    if (got == Result::kSat) {
      // The model must actually satisfy every clause.
      for (const std::vector<Lit>& c : clauses) {
        bool any = false;
        for (const Lit l : c) any |= s.model_value(l);
        EXPECT_TRUE(any);
      }
    }
  }
}

TEST(SatSolver, StatsArepopulated) {
  Solver s;
  add_php(s, 6, 5);
  ASSERT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
}

// The conflict core must report failed assumptions *as assumed* — exactly
// the literals passed in, never their negations. The satdec core-harvest
// reads this set to decide which selector variables it may free, so a
// flipped polarity silently produces wrong (non-decomposable) groupings.
TEST(SatSolver, ConflictCoreIsStrictSubsetOfAssumptionsAsAssumed) {
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  const Var z = s.new_var();
  const Var w = s.new_var();  // irrelevant assumption, must not be required
  ASSERT_TRUE(s.add_clause({neg(x), pos(y)}));  // x -> y
  ASSERT_TRUE(s.add_clause({neg(y), pos(z)}));  // y -> z
  ASSERT_EQ(s.solve({pos(w), pos(x), neg(z)}), Result::kUnsat);
  ASSERT_FALSE(s.conflict().empty());
  for (const Lit l : s.conflict()) {
    EXPECT_TRUE(l == pos(x) || l == neg(z))
        << "core literal is not an as-assumed assumption";
  }
  // The core stays usable as a new assumption set: it must still be UNSAT.
  EXPECT_EQ(s.solve(s.conflict()), Result::kUnsat);
}

TEST(SatSolver, ConflictCoreImmediateUnitContradiction) {
  // The failed assumption is falsified at level 0 (analyze_final's early
  // return): the core is exactly the as-assumed literal.
  Solver s;
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause({neg(x)}));
  ASSERT_EQ(s.solve({pos(x)}), Result::kUnsat);
  ASSERT_EQ(s.conflict().size(), 1u);
  EXPECT_EQ(s.conflict().front(), pos(x));
}

// AllSAT completeness under blocking clauses: the enumeration pattern the
// satdec materializer runs. This drives the activity heap through repeated
// shrink-to-singleton/regrow cycles, the state a heap_pop bug once corrupted
// — a corrupted heap skips models or reports spurious UNSAT.
TEST(SatSolver, AllSatEnumerationMatchesBruteForceCount) {
  std::mt19937_64 rng(321);
  for (int round = 0; round < 25; ++round) {
    const unsigned nv = 4;
    Solver s;
    std::vector<Var> vars;
    for (unsigned i = 0; i < nv; ++i) vars.push_back(s.new_var());
    std::vector<std::vector<Lit>> clauses;
    const unsigned nc = 3 + static_cast<unsigned>(rng() % 6);
    bool consistent = true;
    for (unsigned c = 0; c < nc; ++c) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k) {
        const Var v = vars[rng() % nv];
        cl.push_back((rng() & 1) ? pos(v) : neg(v));
      }
      clauses.push_back(cl);
      consistent &= s.add_clause(cl);
    }
    std::uint32_t expected = 0;
    for (std::uint32_t m = 0; m < (1u << nv); ++m) {
      bool all = true;
      for (const std::vector<Lit>& c : clauses) {
        bool any = false;
        for (const Lit l : c) any |= (((m >> l.var()) & 1u) != 0) != l.negated();
        all &= any;
      }
      expected += all;
    }
    if (!consistent) {
      EXPECT_EQ(expected, 0u) << "round " << round;
      continue;
    }
    std::uint32_t found = 0;
    while (s.solve() == Result::kSat) {
      ++found;
      ASSERT_LE(found, expected) << "round " << round << ": duplicate model";
      std::vector<Lit> blocking;
      for (const Var v : vars) {
        blocking.push_back(s.model_value(v) ? neg(v) : pos(v));
      }
      if (!s.add_clause(blocking)) break;
    }
    EXPECT_EQ(found, expected) << "round " << round;
  }
}

}  // namespace
}  // namespace bidec::sat
