// SIS-like and BDS-like baseline flows: functional correctness against the
// specification and the characteristic structural properties the paper
// attributes to each (SIS: no EXORs; BDS-like: mirrors the BDD).
#include <gtest/gtest.h>

#include <random>

#include "baseline/bds_like.h"
#include "baseline/sis_like.h"
#include "tt/truth_table.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

std::vector<Isf> random_spec(BddManager& mgr, unsigned nv, unsigned outs,
                             std::mt19937_64& rng, double dc_density) {
  std::vector<Isf> spec;
  for (unsigned o = 0; o < outs; ++o) {
    const TruthTable on = TruthTable::random(nv, rng, 0.5);
    const TruthTable dc = TruthTable::random(nv, rng, dc_density);
    spec.emplace_back((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
  }
  return spec;
}

class BaselineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineProperty, SisLikeSatisfiesSpec) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 4 + GetParam() % 3;
  BddManager mgr(nv);
  const std::vector<Isf> spec = random_spec(mgr, nv, 3, rng, 0.3);
  const Netlist net = sis_like_synthesize(mgr, spec, {}, {});
  EXPECT_TRUE(verify_against_isfs(mgr, net, spec).ok);
}

TEST_P(BaselineProperty, BdsLikeSatisfiesSpec) {
  std::mt19937_64 rng(GetParam() + 50);
  const unsigned nv = 4 + GetParam() % 3;
  BddManager mgr(nv);
  const std::vector<Isf> spec = random_spec(mgr, nv, 3, rng, 0.3);
  const Netlist net = bds_like_synthesize(mgr, spec, {}, {});
  EXPECT_TRUE(verify_against_isfs(mgr, net, spec).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineProperty, ::testing::Range<std::uint64_t>(0, 8));

TEST(SisLike, EmitsNoExorGates) {
  std::mt19937_64 rng(71);
  BddManager mgr(6);
  const std::vector<Isf> spec = random_spec(mgr, 6, 4, rng, 0.2);
  const Netlist net = sis_like_synthesize(mgr, spec, {}, {});
  EXPECT_EQ(net.stats().exors, 0u);
}

TEST(SisLike, ParityCostsExponentiallyMoreThanXorTree) {
  // The headline structural difference of Table 2: a two-level flow pays
  // 2^(n-1) product terms for parity.
  BddManager mgr(4);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 4; ++v) parity ^= mgr.var(v);
  const std::vector<Isf> spec{Isf::from_csf(parity)};
  const Netlist net = sis_like_synthesize(mgr, spec, {}, {});
  EXPECT_TRUE(verify_against_isfs(mgr, net, spec).ok);
  // 3 XOR gates suffice; the AND/OR netlist needs far more.
  EXPECT_GT(net.stats().two_input, 6u);
}

TEST(SisLike, MinimizationImprovesOverRawCover) {
  std::mt19937_64 rng(72);
  BddManager mgr(6);
  const std::vector<Isf> spec = random_spec(mgr, 6, 2, rng, 0.4);
  SisLikeOptions raw;
  raw.minimize = false;
  const Netlist unminimized = sis_like_synthesize(mgr, spec, {}, {}, raw);
  const Netlist minimized = sis_like_synthesize(mgr, spec, {}, {});
  EXPECT_TRUE(verify_against_isfs(mgr, minimized, spec).ok);
  EXPECT_LE(minimized.stats().area, unminimized.stats().area * 1.05);
}

TEST(SisLike, PlaEntryPoint) {
  BddManager mgr(3);
  const PlaFile pla = PlaFile::parse_string(
      ".i 3\n.o 2\n.ilb a b c\n.ob f g\n11- 10\n--1 01\n000 1-\n.e\n");
  const Netlist net = sis_like_synthesize(mgr, pla);
  EXPECT_EQ(net.num_inputs(), 3u);
  EXPECT_EQ(net.num_outputs(), 2u);
  EXPECT_EQ(net.input_name(0), "a");
  EXPECT_EQ(net.output_name(1), "g");
  const std::vector<Isf> spec = pla.to_isfs(mgr);
  EXPECT_TRUE(verify_against_isfs(mgr, net, spec).ok);
}

TEST(BdsLike, NetlistSizeTracksBddSize) {
  // Each non-constant-child BDD node costs at most 3 gates + 1 inverter.
  std::mt19937_64 rng(73);
  BddManager mgr(7);
  const TruthTable t = TruthTable::random(7, rng);
  const Bdd f = t.to_bdd(mgr);
  const std::vector<Isf> spec{Isf::from_csf(f)};
  const Netlist net = bds_like_synthesize(mgr, spec, {}, {}, /*absorb=*/false);
  EXPECT_LE(net.stats().two_input, 3 * f.dag_size());
}

TEST(BdsLike, SharesNodesAcrossOutputs) {
  BddManager mgr(5);
  const Bdd shared = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  const std::vector<Isf> spec{Isf::from_csf(shared & mgr.var(3)),
                              Isf::from_csf(shared & mgr.var(4))};
  const Netlist net = bds_like_synthesize(mgr, spec, {}, {});
  // Building both outputs independently would duplicate the shared cone.
  const std::vector<Isf> solo{spec[0]};
  const Netlist net_solo = bds_like_synthesize(mgr, solo, {}, {});
  EXPECT_LT(net.stats().two_input, 2 * net_solo.stats().two_input + 2);
}

TEST(BdsLike, ComplementChildUsesXor) {
  BddManager mgr(3);
  // f = x0 ? ~g : g with g = x1 & x2 has hi == ~lo at the root.
  const Bdd g = mgr.var(1) & mgr.var(2);
  const Bdd f = mgr.ite(mgr.var(0), ~g, g);
  const std::vector<Isf> spec{Isf::from_csf(f)};
  const Netlist net = bds_like_synthesize(mgr, spec, {}, {}, /*absorb=*/false);
  EXPECT_GE(net.stats().exors, 1u);
  EXPECT_TRUE(verify_against_isfs(mgr, net, spec).ok);
}

}  // namespace
}  // namespace bidec
