// ATPG substrate: fault enumeration, fault simulation semantics, exact
// BDD-based detection, redundancy identification on a circuit constructed
// to contain a redundant fault.
#include "atpg/atpg.h"

#include <gtest/gtest.h>

namespace bidec {
namespace {

Netlist tiny_circuit() {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  net.add_output("y", net.add_and(a, b));
  return net;
}

TEST(Atpg, FaultEnumerationCounts) {
  const Netlist net = tiny_circuit();
  const std::vector<Fault> faults = enumerate_faults(net);
  // 2 inputs (stem only: 2 faults each) + 1 AND (2 stem + 4 pin) = 10.
  EXPECT_EQ(faults.size(), 10u);
}

TEST(Atpg, FaultEnumerationSkipsConstants) {
  Netlist net;
  const SignalId a = net.add_input("a");
  net.add_output("y", net.add_or(a, net.get_const(false)));  // folds to a
  const std::vector<Fault> faults = enumerate_faults(net);
  for (const Fault& f : faults) {
    const GateType t = net.node(f.node).type;
    EXPECT_NE(t, GateType::kConst0);
    EXPECT_NE(t, GateType::kConst1);
  }
}

TEST(Atpg, StemFaultSimulation) {
  const Netlist net = tiny_circuit();
  // Output stuck-at-1: with pattern a=0,b=0 good=0, faulty=1.
  const Fault fault{net.output_signal(0), -1, true};
  const std::vector<std::uint64_t> good = net.simulate64({0, 0});
  const std::vector<std::uint64_t> bad = simulate_with_fault(net, {0, 0}, fault);
  EXPECT_EQ(good[0] & 1, 0u);
  EXPECT_EQ(bad[0] & 1, 1u);
}

TEST(Atpg, PinFaultSimulation) {
  const Netlist net = tiny_circuit();
  // AND input pin 0 stuck-at-1: pattern a=0, b=1 -> good 0, faulty 1.
  const Fault fault{net.output_signal(0), 0, true};
  const std::vector<std::uint64_t> bad = simulate_with_fault(net, {0, ~0ull}, fault);
  EXPECT_EQ(bad[0] & 1, 1u);
  EXPECT_EQ(net.simulate64({0, ~0ull})[0] & 1, 0u);
}

TEST(Atpg, InputStemFaultPropagates) {
  const Netlist net = tiny_circuit();
  const Fault fault{net.inputs()[0], -1, false};  // a stuck-at-0
  const std::vector<std::uint64_t> bad = simulate_with_fault(net, {~0ull, ~0ull}, fault);
  EXPECT_EQ(bad[0] & 1, 0u);
}

TEST(Atpg, FaultyBddMatchesFaultySimulation) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  net.add_output("y", net.add_or(net.add_xor(a, b), net.add_and(b, c)));
  BddManager mgr(3);
  const std::vector<Fault> faults = enumerate_faults(net);
  for (const Fault& fault : faults) {
    const std::vector<Bdd> fbdd = faulty_netlist_to_bdds(mgr, net, fault);
    for (unsigned m = 0; m < 8; ++m) {
      std::vector<std::uint64_t> words{m & 1 ? ~0ull : 0, m & 2 ? ~0ull : 0,
                                       m & 4 ? ~0ull : 0};
      const std::vector<std::uint64_t> sim = simulate_with_fault(net, words, fault);
      const std::vector<bool> in{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
      EXPECT_EQ(mgr.eval(fbdd[0], in), (sim[0] & 1) != 0)
          << "fault node " << fault.node << " pin " << fault.pin << " sa"
          << fault.stuck_value << " minterm " << m;
    }
  }
}

TEST(Atpg, FullCoverageOnIrredundantCircuit) {
  const Netlist net = tiny_circuit();
  BddManager mgr(2);
  const AtpgResult res = run_atpg(mgr, net);
  EXPECT_EQ(res.redundant, 0u);
  EXPECT_EQ(res.detected(), res.total_faults);
  EXPECT_DOUBLE_EQ(res.coverage(), 1.0);
}

TEST(Atpg, DetectsInjectedRedundancy) {
  // y = (a & b) | (a & ~b) built WITHOUT simplification by using two
  // separate AND gates: the circuit computes y = a, and several faults on
  // the redundant b-path are untestable.
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  // Defeat the complement folding by an extra buffer-like OR structure:
  const SignalId t1 = net.add_and(a, b);
  const SignalId nb = net.add_not(b);
  const SignalId t2 = net.add_and(a, nb);
  const SignalId y = net.add_or(t1, t2);
  net.add_output("y", y);
  BddManager mgr(2);
  const AtpgResult res = run_atpg(mgr, net);
  EXPECT_GT(res.redundant, 0u);
  EXPECT_LT(res.coverage(), 1.0);
  EXPECT_EQ(res.redundant_faults.size(), res.redundant);
}

TEST(Atpg, RemoveRedundanciesCleansInjectedRedundancy) {
  // y = (a & b) | (a & ~b) == a: removal must shrink the circuit to the
  // bare input while preserving the function.
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId y = net.add_or(net.add_and(a, b), net.add_and(a, net.add_not(b)));
  net.add_output("y", y);
  BddManager mgr(2);
  const std::size_t removed = remove_redundancies(mgr, net);
  EXPECT_GT(removed, 0u);
  const AtpgResult res = run_atpg(mgr, net);
  EXPECT_EQ(res.redundant, 0u);
  // Function is still y = a.
  EXPECT_TRUE(net.evaluate({true, false})[0]);
  EXPECT_TRUE(net.evaluate({true, true})[0]);
  EXPECT_FALSE(net.evaluate({false, true})[0]);
}

TEST(Atpg, RemoveRedundanciesIsNoOpOnCleanCircuit) {
  Netlist net = tiny_circuit();
  BddManager mgr(2);
  EXPECT_EQ(remove_redundancies(mgr, net), 0u);
}

TEST(Atpg, GeneratedTestsActuallyDetect) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  net.add_output("y", net.add_xor(net.add_and(a, b), c));
  BddManager mgr(3);
  // Skip random simulation entirely so every fault goes through exact
  // generation and gets a recorded test vector.
  const AtpgResult res = run_atpg(mgr, net, /*random_words=*/0);
  EXPECT_EQ(res.detected_by_random, 0u);
  EXPECT_EQ(res.detected_by_exact + res.redundant, res.total_faults);
  for (const auto& [fault, test] : res.generated_tests) {
    std::vector<std::uint64_t> words(net.num_inputs());
    for (std::size_t i = 0; i < words.size(); ++i) words[i] = test[i] ? ~0ull : 0;
    const std::vector<std::uint64_t> good = net.simulate64(words);
    const std::vector<std::uint64_t> bad = simulate_with_fault(net, words, fault);
    bool differs = false;
    for (std::size_t o = 0; o < good.size(); ++o) differs |= (good[o] & 1) != (bad[o] & 1);
    EXPECT_TRUE(differs) << "test does not detect fault on node " << fault.node;
  }
}

TEST(Atpg, RandomAndExactAgreeOnTotals) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  const SignalId d = net.add_input("d");
  net.add_output("y", net.add_or(net.add_and(a, b), net.add_xor(c, d)));
  BddManager mgr(4);
  const AtpgResult with_random = run_atpg(mgr, net, 8);
  const AtpgResult exact_only = run_atpg(mgr, net, 0);
  EXPECT_EQ(with_random.detected(), exact_only.detected());
  EXPECT_EQ(with_random.redundant, exact_only.redundant);
}

}  // namespace
}  // namespace bidec
