// Golden regression corpus: every case in tests/corpus/ runs through the
// full synthesis flow and BOTH verification engines, and its netlist stats
// must match tests/corpus/expected.stats byte for byte. The corpus collects
// prior bug reproducers (JSON-escaper names, a GC-threshold spike,
// complement-edge negation cases) next to ordinary small functions — and,
// for the SAT engine, BDD-hostile multipliers (mul*.blif) — so any change
// in decomposition behaviour shows up as a diff against the golden file
// rather than as a silent drift.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <cstdlib>

#include "engine/batch_engine.h"

namespace bidec {
namespace {

namespace fs = std::filesystem;

// CI hook: BIDEC_CORPUS_PROOF=log|check runs the whole corpus with proof
// logging (and, for "check", independent re-validation of every UNSAT the
// SAT engine and SAT verifier rely on). The golden stats must be identical
// either way — proofs observe the flow, they never steer it.
proof::ProofPolicy corpus_proof_policy() {
  const char* env = std::getenv("BIDEC_CORPUS_PROOF");
  if (!env) return proof::ProofPolicy::kOff;
  const std::optional<proof::ProofPolicy> policy = proof::parse_proof_policy(env);
  EXPECT_TRUE(policy.has_value())
      << "BIDEC_CORPUS_PROOF must be off|log|check, got '" << env << "'";
  return policy.value_or(proof::ProofPolicy::kOff);
}

struct GoldenStats {
  unsigned inputs = 0;
  unsigned outputs = 0;
  std::size_t gates = 0;
  std::size_t two_input = 0;
  std::size_t exors = 0;
  std::size_t inverters = 0;
  unsigned levels = 0;
};

const char* corpus_dir() {
#ifdef BIDEC_CORPUS_DIR
  return BIDEC_CORPUS_DIR;
#else
  return "tests/corpus";
#endif
}

std::map<std::string, GoldenStats> load_golden() {
  std::ifstream in(fs::path(corpus_dir()) / "expected.stats");
  EXPECT_TRUE(in.good()) << "cannot open expected.stats in " << corpus_dir();
  std::map<std::string, GoldenStats> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string name;
    GoldenStats s;
    row >> name >> s.inputs >> s.outputs >> s.gates >> s.two_input >> s.exors >>
        s.inverters >> s.levels;
    EXPECT_FALSE(row.fail()) << "malformed expected.stats line: " << line;
    golden.emplace(std::move(name), s);
  }
  return golden;
}

std::vector<std::string> list_cases() {
  std::vector<std::string> cases;
  for (const fs::directory_entry& e : fs::directory_iterator(corpus_dir())) {
    const fs::path& p = e.path();
    if (p.extension() == ".pla" || p.extension() == ".blif") {
      cases.push_back(p.filename().string());
    }
  }
  std::sort(cases.begin(), cases.end());
  return cases;
}

// The corpus and the golden file must list exactly the same cases: a case
// added without golden stats (or stale stats for a removed case) is itself
// a regression.
TEST(Corpus, GoldenFileCoversEveryCase) {
  const std::map<std::string, GoldenStats> golden = load_golden();
  const std::vector<std::string> cases = list_cases();
  EXPECT_GE(cases.size(), 25u) << "corpus shrank below its seeded size";
  for (const std::string& c : cases) {
    EXPECT_TRUE(golden.count(c)) << c << " has no expected.stats entry";
  }
  for (const auto& [name, stats] : golden) {
    EXPECT_TRUE(std::find(cases.begin(), cases.end(), name) != cases.end())
        << "expected.stats lists missing case " << name;
  }
}

TEST(Corpus, FullFlowMatchesGoldenAndBothVerifiersPass) {
  const std::map<std::string, GoldenStats> golden = load_golden();
  const std::vector<std::string> cases = list_cases();
  ASSERT_FALSE(cases.empty());

  BatchEngine engine;
  for (const std::string& c : cases) {
    JobSpec spec;
    spec.name = c;
    spec.source = (fs::path(corpus_dir()) / c).string();
    spec.verify = VerifyEngine::kBoth;
    spec.flow.lint = LintMode::kWarn;
    spec.flow.proof = corpus_proof_policy();
    // The mul*.blif cases are BDD-hostile multipliers seeded for the SAT
    // engine: under the batch node budget the BDD flow cannot finish them,
    // so they pin the engine=sat path in the golden corpus instead.
    if (c.rfind("mul", 0) == 0) spec.flow.engine = EngineSelect::kSat;
    engine.submit(std::move(spec));
  }
  const BatchOutcome outcome = engine.run();
  ASSERT_EQ(outcome.results.size(), cases.size());

  for (const JobResult& r : outcome.results) {
    const JobReport& rep = r.report;
    SCOPED_TRACE(rep.name);
    EXPECT_EQ(rep.status, JobStatus::kOk) << rep.error;
    EXPECT_EQ(rep.bdd_verdict, 1);
    EXPECT_EQ(rep.sat_verdict, 1);
    EXPECT_TRUE(rep.failed_outputs.empty());
    if (rep.proof_policy == proof::ProofPolicy::kCheck) {
      EXPECT_EQ(rep.proof.failed_checks, 0u);
      // Every case exercises at least the SAT verifier's miters, so a
      // checked run that validated nothing means the plumbing fell off.
      EXPECT_GT(rep.proof.checked_unsat, 0u);
    }

    const auto it = golden.find(rep.name);
    ASSERT_NE(it, golden.end());
    const GoldenStats& g = it->second;
    EXPECT_EQ(rep.num_inputs, g.inputs);
    EXPECT_EQ(rep.num_outputs, g.outputs);
    EXPECT_EQ(rep.gates, g.gates);
    EXPECT_EQ(rep.two_input, g.two_input);
    EXPECT_EQ(rep.exors, g.exors);
    EXPECT_EQ(rep.inverters, g.inverters);
    EXPECT_EQ(rep.levels, g.levels);
  }
}

// The certified-UNSAT acceptance run: the three engine=sat multiplier cases
// under --proof=check. Every UNSAT the decomposition oracles and the SAT
// verifier acted on must have been re-validated by the independent checker,
// and the counts must be visible in the stable JSON.
TEST(Corpus, SatEngineCasesPassUnderProofCheck) {
  BatchEngine engine;
  std::size_t submitted = 0;
  for (const std::string& c : list_cases()) {
    if (c.rfind("mul", 0) != 0) continue;
    JobSpec spec;
    spec.name = c;
    spec.source = (fs::path(corpus_dir()) / c).string();
    spec.flow.engine = EngineSelect::kSat;
    spec.flow.proof = proof::ProofPolicy::kCheck;
    spec.verify = VerifyEngine::kSat;
    engine.submit(std::move(spec));
    ++submitted;
  }
  ASSERT_GE(submitted, 3u) << "the seeded mul*.blif SAT cases went missing";
  const BatchOutcome outcome = engine.run();
  for (const JobResult& r : outcome.results) {
    const JobReport& rep = r.report;
    SCOPED_TRACE(rep.name);
    EXPECT_EQ(rep.status, JobStatus::kOk) << rep.error;
    EXPECT_EQ(rep.proof.failed_checks, 0u);
    EXPECT_GT(rep.proof.checked_unsat, 0u);
    EXPECT_GT(rep.proof.trimmed_clauses, 0u);
    const std::string json = rep.to_stable_json();
    EXPECT_NE(json.find("\"proof\": {\"policy\": \"check\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"failed_checks\": 0"), std::string::npos) << json;
  }
}

// The JSON-escaper reproducer: signal names with quotes, backslashes and
// commas must survive into valid report JSON (escaped, not raw).
TEST(Corpus, JsonEscaperNamesProduceEscapedReport) {
  BatchEngine engine;
  JobSpec spec;
  spec.name = "quote\"and\\slash.pla";
  spec.source = (fs::path(corpus_dir()) / "json_names.pla").string();
  spec.verify = VerifyEngine::kBoth;
  engine.submit(std::move(spec));
  const BatchOutcome outcome = engine.run();
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_EQ(outcome.results.front().report.status, JobStatus::kOk);

  const std::string json = outcome.results.front().report.to_json();
  EXPECT_NE(json.find("quote\\\"and\\\\slash.pla"), std::string::npos) << json;
  // No raw (unescaped) quote may survive inside the name.
  EXPECT_EQ(json.find("quote\"and"), std::string::npos) << json;
}

// Complement-edge reproducer: an output and its exact negation decompose
// into a shared structure plus one inverter, and both verifiers accept it.
TEST(Corpus, NegationPairSharesStructure) {
  BatchEngine engine;
  JobSpec spec;
  spec.source = (fs::path(corpus_dir()) / "neg_pair.pla").string();
  spec.verify = VerifyEngine::kBoth;
  engine.submit(std::move(spec));
  const BatchOutcome outcome = engine.run();
  const JobReport& rep = outcome.results.front().report;
  EXPECT_EQ(rep.status, JobStatus::kOk) << rep.error;
  // f and g = NOT f: the netlist must not duplicate the whole cone.
  EXPECT_LE(rep.gates, 6u);
}

}  // namespace
}  // namespace bidec
