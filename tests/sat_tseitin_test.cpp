// The Tseitin layer: every encode_* entry point is checked semantically by
// forcing the inputs with assumptions and reading the defined literal back
// from the model — exhaustively over all input assignments for small sizes.
#include "sat/tseitin.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "io/pla.h"
#include "netlist/netlist.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

using sat::Lit;
using sat::Solver;
using sat::TseitinEncoder;
using sat::Var;

using Result = Solver::Result;

// Force input variable v to `value` via an assumption literal.
Lit assume(Var v, bool value) { return sat::mk_lit(v, /*negated=*/!value); }

TEST(Tseitin, ConstantLiterals) {
  Solver s;
  TseitinEncoder enc(s);
  const Lit t = enc.constant(true);
  const Lit f = enc.constant(false);
  EXPECT_EQ(t, ~f);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(t));
  EXPECT_FALSE(s.model_value(f));
}

TEST(Tseitin, GatePrimitivesMatchTruthTables) {
  const GateType types[] = {GateType::kBuf, GateType::kNot,  GateType::kAnd,
                            GateType::kOr,  GateType::kXor,  GateType::kNand,
                            GateType::kNor, GateType::kXnor};
  for (const GateType t : types) {
    Solver s;
    TseitinEncoder enc(s);
    const Var a = enc.add_var();
    const Var b = enc.add_var();
    const Lit out = enc.encode_gate(t, sat::mk_lit(a), sat::mk_lit(b));
    for (unsigned m = 0; m < 4; ++m) {
      const bool va = (m & 1) != 0;
      const bool vb = (m & 2) != 0;
      ASSERT_EQ(s.solve({assume(a, va), assume(b, vb)}), Result::kSat);
      const std::uint64_t expect =
          gate_eval64(t, va ? ~std::uint64_t{0} : 0, vb ? ~std::uint64_t{0} : 0) & 1u;
      EXPECT_EQ(s.model_value(out), expect != 0)
          << gate_name(t) << "(" << va << "," << vb << ")";
    }
  }
}

TEST(Tseitin, NetlistEncodingMatchesEvaluate) {
  // Random 5-input netlists over the full gate vocabulary, checked on all
  // 32 assignments each.
  std::mt19937_64 rng(11);
  for (int round = 0; round < 25; ++round) {
    Netlist net;
    std::vector<SignalId> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(net.add_input(numbered_name("i", i)));
    const GateType types[] = {GateType::kNot,  GateType::kAnd, GateType::kOr,
                              GateType::kXor,  GateType::kNand, GateType::kNor,
                              GateType::kXnor};
    for (int g = 0; g < 12; ++g) {
      const GateType t = types[rng() % std::size(types)];
      const SignalId a = pool[rng() % pool.size()];
      const SignalId b = pool[rng() % pool.size()];
      pool.push_back(gate_arity(t) == 1 ? net.add_gate(t, a) : net.add_gate(t, a, b));
    }
    for (int o = 0; o < 3; ++o) {
      net.add_output(numbered_name("o", o), pool[pool.size() - 1 - o]);
    }

    Solver s;
    TseitinEncoder enc(s);
    const std::vector<Var> in_vars = enc.add_vars(net.num_inputs());
    const std::vector<Lit> outs = enc.encode_netlist(net, in_vars);
    ASSERT_EQ(outs.size(), net.num_outputs());
    for (unsigned m = 0; m < 32; ++m) {
      std::vector<bool> inputs;
      std::vector<Lit> assumptions;
      for (unsigned i = 0; i < 5; ++i) {
        inputs.push_back((m >> i) & 1);
        assumptions.push_back(assume(in_vars[i], inputs.back()));
      }
      const std::vector<bool> expect = net.evaluate(inputs);
      ASSERT_EQ(s.solve(assumptions), Result::kSat);
      for (std::size_t o = 0; o < outs.size(); ++o) {
        ASSERT_EQ(s.model_value(outs[o]), expect[o])
            << "round " << round << " minterm " << m << " output " << o;
      }
    }
  }
}

TEST(Tseitin, CubeEncoding) {
  Solver s;
  TseitinEncoder enc(s);
  const std::vector<Var> x = enc.add_vars(3);
  const Lit cube = enc.encode_cube("1-0", x);
  for (unsigned m = 0; m < 8; ++m) {
    const bool b0 = (m & 1) != 0;
    const bool b1 = (m & 2) != 0;
    const bool b2 = (m & 4) != 0;
    ASSERT_EQ(s.solve({assume(x[0], b0), assume(x[1], b1), assume(x[2], b2)}),
              Result::kSat);
    EXPECT_EQ(s.model_value(cube), b0 && !b2) << m;
  }
  // All-don't-care cube is the constant-true function.
  const Lit all = enc.encode_cube("---", x);
  ASSERT_EQ(s.solve({assume(x[0], false)}), Result::kSat);
  EXPECT_TRUE(s.model_value(all));
}

TEST(Tseitin, CoverEncodingMatchesPlaSets) {
  // A two-output fr-type PLA: '1' rows are the on-cover, '0' rows the
  // off-cover. encode_cover('1') must match on_set(), minterm by minterm.
  const PlaFile pla = PlaFile::parse_string(
      ".i 3\n.o 2\n.type fr\n"
      "11- 10\n"
      "0-1 11\n"
      "1-0 01\n"
      "000 00\n"
      ".e\n");
  BddManager mgr(3);
  for (unsigned o = 0; o < 2; ++o) {
    Solver s;
    TseitinEncoder enc(s);
    const std::vector<Var> x = enc.add_vars(3);
    const Lit on = enc.encode_cover(pla, x, o, '1');
    const Lit off = enc.encode_cover(pla, x, o, '0');
    const Bdd on_bdd = pla.on_set(mgr, o);
    for (unsigned m = 0; m < 8; ++m) {
      const std::vector<bool> inputs{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
      ASSERT_EQ(s.solve({assume(x[0], inputs[0]), assume(x[1], inputs[1]),
                         assume(x[2], inputs[2])}),
                Result::kSat);
      EXPECT_EQ(s.model_value(on), mgr.eval(on_bdd, inputs)) << "o" << o << " m" << m;
      // Reference for the off cover: match the '0' rows by hand.
      bool off_expect = false;
      for (const PlaFile::Row& row : pla.rows) {
        if (row.outputs[o] != '0') continue;
        bool match = true;
        for (unsigned i = 0; i < 3; ++i) {
          if (row.inputs[i] == '1' && !inputs[i]) match = false;
          if (row.inputs[i] == '0' && inputs[i]) match = false;
        }
        off_expect |= match;
      }
      EXPECT_EQ(s.model_value(off), off_expect) << "o" << o << " m" << m;
    }
  }
}

TEST(Tseitin, BddEncodingMatchesEval) {
  // Random BDDs assembled from the manager's operators, checked on all 2^5
  // assignments via the CNF model.
  BddManager mgr(5);
  std::mt19937_64 rng(23);
  for (int round = 0; round < 25; ++round) {
    std::vector<Bdd> pool;
    for (unsigned v = 0; v < 5; ++v) pool.push_back(mgr.var(v));
    for (int i = 0; i < 10; ++i) {
      const Bdd a = pool[rng() % pool.size()];
      const Bdd b = pool[rng() % pool.size()];
      switch (rng() % 4) {
        case 0: pool.push_back(a & b); break;
        case 1: pool.push_back(a | b); break;
        case 2: pool.push_back(a ^ b); break;
        default: pool.push_back(~a); break;
      }
    }
    const Bdd f = pool.back();

    Solver s;
    TseitinEncoder enc(s);
    const std::vector<Var> x = enc.add_vars(5);
    const Lit lit = enc.encode_bdd(f, x);
    for (unsigned m = 0; m < 32; ++m) {
      std::vector<bool> inputs;
      std::vector<Lit> assumptions;
      for (unsigned v = 0; v < 5; ++v) {
        inputs.push_back((m >> v) & 1);
        assumptions.push_back(assume(x[v], inputs.back()));
      }
      ASSERT_EQ(s.solve(assumptions), Result::kSat);
      ASSERT_EQ(s.model_value(lit), mgr.eval(f, inputs))
          << "round " << round << " minterm " << m;
    }
  }
}

TEST(Tseitin, BddTerminalsEncodeAsConstants) {
  BddManager mgr(2);
  Solver s;
  TseitinEncoder enc(s);
  const std::vector<Var> x = enc.add_vars(2);
  const Lit t = enc.encode_bdd(mgr.bdd_true(), x);
  const Lit f = enc.encode_bdd(mgr.bdd_false(), x);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(t));
  EXPECT_FALSE(s.model_value(f));
}

}  // namespace
}  // namespace bidec
