// Theorem 1 (OR-decomposability), its AND dual, Theorem 2 (EXOR with
// singleton sets) and the weak-decomposition gain tests, all validated
// against exhaustive enumeration of component functions.
#include "bidec/check.h"

#include <gtest/gtest.h>

#include <random>

#include "brute_force.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

using testing::BruteGate;
using testing::brute_force_decomposable;

Isf random_isf(BddManager& mgr, unsigned nv, std::mt19937_64& rng, double dc_density) {
  const TruthTable on = TruthTable::random(nv, rng, 0.5);
  const TruthTable dc = TruthTable::random(nv, rng, dc_density);
  return Isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
}

class CheckVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckVsBruteForce, OrTheorem1AllSingletonPairs) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.25);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      EXPECT_EQ(check_or_decomposable(isf, xa, xb),
                brute_force_decomposable(mgr, isf, nv, xa, xb, BruteGate::kOr))
          << "xa=" << a << " xb=" << b;
    }
  }
}

TEST_P(CheckVsBruteForce, AndDualAllSingletonPairs) {
  std::mt19937_64 rng(GetParam() + 1000);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.25);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      EXPECT_EQ(check_and_decomposable(isf, xa, xb),
                brute_force_decomposable(mgr, isf, nv, xa, xb, BruteGate::kAnd))
          << "xa=" << a << " xb=" << b;
    }
  }
}

TEST_P(CheckVsBruteForce, OrTheorem1LargerSets) {
  std::mt19937_64 rng(GetParam() + 2000);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.3);
  const unsigned xa[] = {0, 1}, xb[] = {2};
  EXPECT_EQ(check_or_decomposable(isf, xa, xb),
            brute_force_decomposable(mgr, isf, nv, xa, xb, BruteGate::kOr));
  const unsigned xa2[] = {0}, xb2[] = {1, 3};
  EXPECT_EQ(check_or_decomposable(isf, xa2, xb2),
            brute_force_decomposable(mgr, isf, nv, xa2, xb2, BruteGate::kOr));
}

TEST_P(CheckVsBruteForce, ExorTheorem2AllSingletonPairs) {
  std::mt19937_64 rng(GetParam() + 3000);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.2);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      EXPECT_EQ(check_exor_decomposable_11(isf, a, b),
                brute_force_decomposable(mgr, isf, nv, xa, xb, BruteGate::kExor))
          << "xa=" << a << " xb=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckVsBruteForce, ::testing::Range<std::uint64_t>(0, 12));

TEST(CheckOr, KnownDecomposableExample) {
  // Paper Fig. 3: F = OR(a+b, c+d) is OR-decomposable with XA={c,d}, XB={a,b}.
  BddManager mgr(4);
  const Bdd f = (mgr.var(0) | mgr.var(1)) | (mgr.var(2) | mgr.var(3));
  const Isf isf = Isf::from_csf(f);
  const unsigned xa[] = {2, 3}, xb[] = {0, 1};
  EXPECT_TRUE(check_or_decomposable(isf, xa, xb));
}

TEST(CheckOr, AndOfXorsIsNotOrDecomposable) {
  BddManager mgr(4);
  const Bdd f = (mgr.var(0) ^ mgr.var(1)) & (mgr.var(2) ^ mgr.var(3));
  const Isf isf = Isf::from_csf(f);
  const unsigned xa[] = {0, 1}, xb[] = {2, 3};
  EXPECT_FALSE(check_or_decomposable(isf, xa, xb));
  EXPECT_TRUE(check_and_decomposable(isf, xa, xb));  // but it is AND-decomposable
  // With the XOR pairs split apart, neither works.
  const unsigned xa2[] = {0}, xb2[] = {1};
  EXPECT_FALSE(check_or_decomposable(isf, xa2, xb2));
  EXPECT_FALSE(check_and_decomposable(isf, xa2, xb2));
}

TEST(CheckExor, ParityIsExorDecomposableEverywhere) {
  BddManager mgr(5);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 5; ++v) parity ^= mgr.var(v);
  const Isf isf = Isf::from_csf(parity);
  for (unsigned a = 0; a < 5; ++a) {
    for (unsigned b = a + 1; b < 5; ++b) {
      EXPECT_TRUE(check_exor_decomposable_11(isf, a, b)) << a << "," << b;
    }
  }
}

TEST(CheckExor, AndIsNotExorDecomposable) {
  BddManager mgr(3);
  const Isf isf = Isf::from_csf(mgr.var(0) & mgr.var(1) & mgr.var(2));
  EXPECT_FALSE(check_exor_decomposable_11(isf, 0, 1));
}

TEST(IsfDerivative, MatchesTruthTableDerivativeForCsf) {
  std::mt19937_64 rng(7);
  BddManager mgr(5);
  const TruthTable t = TruthTable::random(5, rng);
  const Isf isf = Isf::from_csf(t.to_bdd(mgr));
  for (unsigned v = 0; v < 5; ++v) {
    const Isf d = isf_derivative(isf, v);
    // For a CSF the derivative is completely specified.
    EXPECT_TRUE(d.is_csf()) << v;
    EXPECT_EQ(TruthTable::from_bdd(mgr, d.q(), 5), t.derivative(v)) << v;
  }
}

TEST(IsfDerivative, DerivativeOfIsfIsConsistent) {
  std::mt19937_64 rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    BddManager mgr(4);
    const TruthTable on = TruthTable::random(4, rng, 0.4);
    const TruthTable dc = TruthTable::random(4, rng, 0.3);
    const Isf isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
    for (unsigned v = 0; v < 4; ++v) {
      // Constructing the Isf validates Q & R = 0 internally.
      const Isf d = isf_derivative(isf, v);
      EXPECT_TRUE((d.q() & d.r()).is_false());
    }
  }
}

TEST(CheckWeak, GainMatchesDefinition) {
  std::mt19937_64 rng(9);
  BddManager mgr(4);
  const Isf isf = random_isf(mgr, 4, rng, 0.3);
  for (unsigned v = 0; v < 4; ++v) {
    const unsigned xa[] = {v};
    const double or_gain = weak_or_gain(isf, xa);
    EXPECT_EQ(check_weak_or_useful(isf, xa), or_gain > 0.0);
    EXPECT_DOUBLE_EQ(or_gain,
                     mgr.sat_count(isf.q() - mgr.exists(isf.r(), xa)));
    const double and_gain = weak_and_gain(isf, xa);
    EXPECT_EQ(check_weak_and_useful(isf, xa), and_gain > 0.0);
  }
}

TEST(CheckWeak, ParityHasNoWeakGain) {
  // For parity, exists_v R is the tautology for every v, so no weak
  // decomposition gains don't-cares (the strong EXOR path must be taken).
  BddManager mgr(4);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 4; ++v) parity ^= mgr.var(v);
  const Isf isf = Isf::from_csf(parity);
  for (unsigned v = 0; v < 4; ++v) {
    const unsigned xa[] = {v};
    EXPECT_FALSE(check_weak_or_useful(isf, xa));
    EXPECT_FALSE(check_weak_and_useful(isf, xa));
  }
}

}  // namespace
}  // namespace bidec
