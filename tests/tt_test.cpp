// The golden model itself gets direct tests on small hand-checked cases.
#include "tt/truth_table.h"

#include <gtest/gtest.h>

#include "bdd/bdd.h"

namespace bidec {
namespace {

TEST(TruthTable, ZerosAndOnes) {
  const TruthTable z = TruthTable::zeros(4);
  const TruthTable o = TruthTable::ones(4);
  EXPECT_TRUE(z.is_zero());
  EXPECT_TRUE(o.is_ones());
  EXPECT_EQ(z.count_ones(), 0u);
  EXPECT_EQ(o.count_ones(), 16u);
  EXPECT_EQ(~z, o);
}

TEST(TruthTable, TailMaskingOnSmallTables) {
  const TruthTable o = TruthTable::ones(2);
  EXPECT_EQ(o.count_ones(), 4u);
  EXPECT_TRUE((~o).is_zero());
}

TEST(TruthTable, ProjectionBelowAndAboveWordBoundary) {
  for (const unsigned nv : {3u, 7u, 8u}) {
    for (unsigned v = 0; v < nv; ++v) {
      const TruthTable p = TruthTable::projection(nv, v);
      for (std::uint64_t m = 0; m < (std::uint64_t{1} << nv); ++m) {
        EXPECT_EQ(p.get(m), ((m >> v) & 1) != 0) << "nv=" << nv << " v=" << v;
      }
    }
  }
}

TEST(TruthTable, ProjectionOutOfRangeThrows) {
  EXPECT_THROW((void)TruthTable::projection(3, 3), std::out_of_range);
}

TEST(TruthTable, SetGetRoundTrip) {
  TruthTable t(5);
  t.set(17, true);
  t.set(3, true);
  t.set(17, false);
  EXPECT_FALSE(t.get(17));
  EXPECT_TRUE(t.get(3));
  EXPECT_EQ(t.count_ones(), 1u);
}

TEST(TruthTable, FromFunctionMajority) {
  const TruthTable maj = TruthTable::from_function(3, [](std::uint64_t m) {
    return __builtin_popcountll(m) >= 2;
  });
  EXPECT_EQ(maj.count_ones(), 4u);
  EXPECT_TRUE(maj.get(0b011));
  EXPECT_FALSE(maj.get(0b100));
}

TEST(TruthTable, BinaryStringRoundTrip) {
  const TruthTable t = TruthTable::from_binary_string("01101001");
  EXPECT_EQ(t.num_vars(), 3u);
  EXPECT_EQ(t.to_binary_string(), "01101001");
  EXPECT_THROW((void)TruthTable::from_binary_string("011"), std::invalid_argument);
  EXPECT_THROW((void)TruthTable::from_binary_string("0a"), std::invalid_argument);
}

TEST(TruthTable, CofactorIsIndependentOfVariable) {
  const TruthTable t = TruthTable::from_function(
      4, [](std::uint64_t m) { return ((m & 1) != 0) != ((m >> 3) != 0); });
  const TruthTable c0 = t.cofactor(0, false);
  EXPECT_FALSE(c0.depends_on(0));
  // Shannon expansion reconstructs the function.
  const TruthTable x0 = TruthTable::projection(4, 0);
  EXPECT_EQ((x0 & t.cofactor(0, true)) | (~x0 & c0), t);
}

TEST(TruthTable, QuantifierDuality) {
  const TruthTable t = TruthTable::from_function(
      5, [](std::uint64_t m) { return (m * 2654435761u) % 7 < 3; });
  for (unsigned v = 0; v < 5; ++v) {
    EXPECT_EQ(~t.exists(v), (~t).forall(v)) << v;
    EXPECT_EQ(t.derivative(v), t.cofactor(v, false) ^ t.cofactor(v, true));
  }
}

TEST(TruthTable, OperatorsMatchBitwiseSemantics) {
  const TruthTable a = TruthTable::projection(3, 0);
  const TruthTable b = TruthTable::projection(3, 1);
  EXPECT_EQ((a & b).count_ones(), 2u);
  EXPECT_EQ((a | b).count_ones(), 6u);
  EXPECT_EQ((a ^ b).count_ones(), 4u);
  EXPECT_EQ((a - b).count_ones(), 2u);
}

TEST(TruthTable, BddRoundTripLarge) {
  std::mt19937_64 rng(99);
  const TruthTable t = TruthTable::random(10, rng);
  BddManager mgr(10);
  EXPECT_EQ(TruthTable::from_bdd(mgr, t.to_bdd(mgr), 10), t);
}

TEST(TruthTable, TooManyVariablesThrows) {
  EXPECT_THROW(TruthTable t(27), std::invalid_argument);
}

}  // namespace
}  // namespace bidec
