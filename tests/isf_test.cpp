// ISF layer: interval semantics, compatibility (Theorem 6), covers,
// inessential-variable removal.
#include "isf/isf.h"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.h"

namespace bidec {
namespace {

TEST(Isf, ConstructionRejectsOverlap) {
  BddManager mgr(3);
  const Bdd a = mgr.var(0);
  EXPECT_THROW(Isf(a, a), std::invalid_argument);
  EXPECT_THROW(Isf(a, a & mgr.var(1)), std::invalid_argument);
  EXPECT_NO_THROW(Isf(a, ~a));
}

TEST(Isf, FromCsfHasEmptyDc) {
  BddManager mgr(3);
  const Bdd f = mgr.var(0) ^ mgr.var(1);
  const Isf isf = Isf::from_csf(f);
  EXPECT_TRUE(isf.is_csf());
  EXPECT_TRUE(isf.dc().is_false());
  EXPECT_EQ(isf.any_cover(), f);
}

TEST(Isf, FromOnDcPartitionsTheSpace) {
  BddManager mgr(3);
  const Bdd on = mgr.var(0) & mgr.var(1);
  const Bdd dc = mgr.var(2) & ~mgr.var(0);
  const Isf isf = Isf::from_on_dc(on, dc);
  EXPECT_EQ(isf.q() | isf.r() | isf.dc(), mgr.bdd_true());
  EXPECT_TRUE((isf.q() & isf.r()).is_false());
  EXPECT_TRUE((isf.q() & isf.dc()).is_false());
  EXPECT_EQ(isf.dc(), dc);
}

TEST(Isf, CompatibilityTheorem6) {
  BddManager mgr(3);
  const Bdd a = mgr.var(0), b = mgr.var(1);
  const Isf isf(a & b, ~a & ~b);  // dc where exactly one is true
  EXPECT_TRUE(isf.is_compatible(a & b));
  EXPECT_TRUE(isf.is_compatible(a));      // a covers Q, misses R
  EXPECT_TRUE(isf.is_compatible(a | b));
  EXPECT_FALSE(isf.is_compatible(~a));    // misses Q
  EXPECT_FALSE(isf.is_compatible(mgr.bdd_true()));  // hits R
  // Complement compatibility.
  EXPECT_TRUE(isf.is_compatible_complement((~(a & b) & (a | b)) | (~a & ~b)));
  EXPECT_TRUE(isf.is_compatible_complement(~a));
  EXPECT_FALSE(isf.is_compatible_complement(a));
}

TEST(Isf, AdmitsConstants) {
  BddManager mgr(2);
  EXPECT_TRUE(Isf(mgr.bdd_false(), mgr.var(0)).admits_const0());
  EXPECT_FALSE(Isf(mgr.var(0), ~mgr.var(0)).admits_const0());
  EXPECT_TRUE(Isf(mgr.var(0), mgr.bdd_false()).admits_const1());
}

TEST(Isf, AnyCoverIsCompatible) {
  std::mt19937_64 rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    BddManager mgr(6);
    const TruthTable on = TruthTable::random(6, rng, 0.4);
    const TruthTable dc = TruthTable::random(6, rng, 0.3);
    const Isf isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
    EXPECT_TRUE(isf.is_compatible(isf.any_cover()));
  }
}

TEST(Isf, SupportIsUnionOfBounds) {
  BddManager mgr(4);
  const Isf isf(mgr.var(0) & mgr.var(1), ~mgr.var(0) & mgr.var(3));
  EXPECT_EQ(isf.support(), (std::vector<unsigned>{0, 1, 3}));
}

TEST(Isf, CofactorBothBounds) {
  BddManager mgr(3);
  const Isf isf(mgr.var(0) & mgr.var(1), ~mgr.var(0));
  const Isf c = isf.cofactor(0, true);
  EXPECT_EQ(c.q(), mgr.var(1));
  EXPECT_TRUE(c.r().is_false());
}

TEST(Isf, InessentialVariableDetected) {
  BddManager mgr(3);
  // Q = x0 & x2, R = ~x0 & x2: x2 only gates whether the point is a care
  // point; the interval admits a cover (x0) independent of x2 -> x2 is
  // inessential, x0 is not.
  const Isf isf(mgr.var(0) & mgr.var(2), ~mgr.var(0) & mgr.var(2));
  EXPECT_TRUE(isf.variable_inessential(2));
  EXPECT_FALSE(isf.variable_inessential(0));
  const Isf reduced = isf.remove_inessential_variables();
  EXPECT_EQ(reduced.support(), std::vector<unsigned>{0});
  // The reduced interval is a sub-problem whose covers still work: x0 is
  // compatible with the original.
  EXPECT_TRUE(isf.is_compatible(reduced.any_cover()));
}

TEST(Isf, CsfHasNoInessentialSupportVariables) {
  std::mt19937_64 rng(22);
  BddManager mgr(5);
  const TruthTable t = TruthTable::random(5, rng);
  const Isf isf = Isf::from_csf(t.to_bdd(mgr));
  const Isf reduced = isf.remove_inessential_variables();
  // For a CSF the support cannot shrink.
  EXPECT_EQ(reduced.support(), isf.support());
}

TEST(Isf, RemovalPreservesCompatibility) {
  std::mt19937_64 rng(23);
  for (int trial = 0; trial < 25; ++trial) {
    BddManager mgr(5);
    const TruthTable on = TruthTable::random(5, rng, 0.3);
    const TruthTable dc = TruthTable::random(5, rng, 0.5);
    const Isf isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
    const Isf reduced = isf.remove_inessential_variables();
    EXPECT_LE(reduced.support().size(), isf.support().size());
    EXPECT_TRUE(isf.is_compatible(reduced.any_cover())) << trial;
  }
}

TEST(Isf, ManagerMismatchRejected) {
  BddManager mgr1(2), mgr2(2);
  EXPECT_THROW(Isf(mgr1.var(0), mgr2.var(1)), std::invalid_argument);
  EXPECT_THROW(Isf(Bdd{}, Bdd{}), std::invalid_argument);
}

}  // namespace
}  // namespace bidec
