// Fault-injection matrix over the batch engine: every FaultPoint, aimed at
// different flow stages, must land a job in kOk/kDegraded or a *clean*
// kTimeout/kError — never a crash, hang, or torn report — with a coherent
// degradation trail and both verifiers passing on every degraded result.
// Also pins the two systemic properties: worker death never strands the
// queue, and one (seed, FaultPlan) produces byte-identical stable reports
// regardless of run count or worker count.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/batch_engine.h"
#include "fault/fault.h"

namespace bidec {
namespace {

namespace fs = std::filesystem;

std::string corpus(const char* name) {
#ifdef BIDEC_CORPUS_DIR
  return (fs::path(BIDEC_CORPUS_DIR) / name).string();
#else
  return (fs::path("tests/corpus") / name).string();
#endif
}

JobSpec heavy_job(bool degrade = true, unsigned max_retries = 2) {
  JobSpec spec;
  spec.source = corpus("gc_spike.pla");
  spec.verify = VerifyEngine::kBoth;
  spec.degrade = degrade;
  spec.max_retries = max_retries;
  return spec;
}

// Trail invariants shared by every matrix case: attempts and trail agree,
// only the last entry may be the successful one, every failed entry names
// its reason, and a degraded success happened below the full rung.
void expect_coherent_trail(const JobReport& rep) {
  SCOPED_TRACE(rep.name + " [" + to_string(rep.status) + "]");
  if (rep.degradation.empty()) {
    EXPECT_EQ(rep.attempts, 1u);
    return;
  }
  EXPECT_EQ(rep.degradation.size(), rep.attempts);
  for (std::size_t i = 0; i < rep.degradation.size(); ++i) {
    const DegradeStep& step = rep.degradation[i];
    EXPECT_FALSE(step.outcome.empty());
    if (i + 1 < rep.degradation.size()) {
      EXPECT_FALSE(step.success) << "non-final attempt marked successful";
    }
  }
  const DegradeStep& last = rep.degradation.back();
  const bool finished =
      rep.status == JobStatus::kOk || rep.status == JobStatus::kDegraded;
  EXPECT_EQ(last.success, finished);
  if (rep.status == JobStatus::kDegraded) {
    EXPECT_NE(last.rung, DegradeRung::kFull);
    // Degraded means degraded-but-correct: both engines re-checked it.
    EXPECT_EQ(rep.bdd_verdict, 1);
    EXPECT_EQ(rep.sat_verdict, 1);
  }
}

BatchOutcome run_one(JobSpec spec, FaultPlan plan) {
  EngineOptions opts;
  opts.num_workers = 1;
  opts.fault = std::move(plan);
  BatchEngine engine(std::move(opts));
  engine.submit(std::move(spec));
  return engine.run();
}

// --- injection point: node-budget trip -------------------------------------

TEST(FaultInjection, NodeBudgetTripDegradesAndVerifies) {
  FaultPlan plan;
  plan.add({FaultPoint::kNodeBudgetTrip, /*at=*/500, 1.0, -1, -1, /*times=*/1});
  const BatchOutcome out = run_one(heavy_job(), plan);
  const JobReport& rep = out.results.front().report;
  EXPECT_EQ(rep.status, JobStatus::kDegraded) << rep.error;
  EXPECT_GE(rep.attempts, 2u);
  expect_coherent_trail(rep);
}

TEST(FaultInjection, NodeBudgetTripWithoutRetriesFailsCleanly) {
  FaultPlan plan;
  plan.add({FaultPoint::kNodeBudgetTrip, /*at=*/500, 1.0, -1, -1, /*times=*/0});
  const BatchOutcome out = run_one(heavy_job(/*degrade=*/false, /*max_retries=*/0), plan);
  const JobReport& rep = out.results.front().report;
  EXPECT_EQ(rep.status, JobStatus::kTimeout);
  EXPECT_NE(rep.error.find("node budget"), std::string::npos) << rep.error;
  EXPECT_EQ(rep.attempts, 1u);
  expect_coherent_trail(rep);
}

// The acceptance case for the ladder: a real (engine-level, not injected)
// node budget that the full flow cannot fit under, rescued by the Shannon
// rung — the job finishes *verified* instead of timing out.
TEST(FaultInjection, ShannonRungRescuesNodeBudgetStarvedCorpusCase) {
  JobSpec starved = heavy_job(/*degrade=*/false, /*max_retries=*/0);
  starved.node_budget = 3000;
  const BatchOutcome dead = run_one(std::move(starved), {});
  EXPECT_EQ(dead.results.front().report.status, JobStatus::kTimeout);

  JobSpec rescued = heavy_job(/*degrade=*/true, /*max_retries=*/1);
  rescued.node_budget = 3000;
  const BatchOutcome out = run_one(std::move(rescued), {});
  const JobReport& rep = out.results.front().report;
  ASSERT_EQ(rep.status, JobStatus::kDegraded) << rep.error;
  ASSERT_FALSE(rep.degradation.empty());
  EXPECT_EQ(rep.degradation.back().rung, DegradeRung::kShannon);
  EXPECT_EQ(rep.bdd_verdict, 1);
  EXPECT_EQ(rep.sat_verdict, 1);
  EXPECT_GT(rep.gates, 0u);
  expect_coherent_trail(rep);
  EXPECT_EQ(out.summary.degraded, 1u);
}

// --- injection point: computed-cache poison-eviction ------------------------

TEST(FaultInjection, CachePoisonIsCorrectnessNeutral) {
  const BatchOutcome clean = run_one(heavy_job(), {});
  FaultPlan plan;
  plan.add({FaultPoint::kCachePoison, 0, /*probability=*/1.0, -1, -1, /*times=*/0});
  const BatchOutcome out = run_one(heavy_job(), plan);
  const JobReport& rep = out.results.front().report;
  EXPECT_EQ(rep.status, JobStatus::kOk) << rep.error;
  EXPECT_EQ(rep.bdd_verdict, 1);
  EXPECT_EQ(rep.sat_verdict, 1);
  // Dropping every insert starves the computed table...
  EXPECT_EQ(rep.cache_inserts, 0u);
  // ...but the produced netlist is the same one the clean run built.
  EXPECT_EQ(rep.gates, clean.results.front().report.gates);
  EXPECT_EQ(rep.exors, clean.results.front().report.exors);
}

TEST(FaultInjection, PartialCachePoisonStillSynthesizes) {
  FaultPlan plan;
  plan.seed = 7;
  plan.add({FaultPoint::kCachePoison, 0, /*probability=*/0.5, -1, -1, /*times=*/0});
  const BatchOutcome out = run_one(heavy_job(), plan);
  const JobReport& rep = out.results.front().report;
  EXPECT_EQ(rep.status, JobStatus::kOk) << rep.error;
  EXPECT_EQ(rep.sat_verdict, 1);
}

// --- injection point: allocation failure at unique-table growth -------------

TEST(FaultInjection, UniqueGrowAllocFailureDegrades) {
  FaultPlan plan;
  plan.add({FaultPoint::kUniqueGrowAlloc, /*at=*/1, 1.0, -1, -1, /*times=*/1});
  const BatchOutcome out = run_one(heavy_job(), plan);
  const JobReport& rep = out.results.front().report;
  EXPECT_EQ(rep.status, JobStatus::kDegraded) << rep.error;
  ASSERT_GE(rep.degradation.size(), 2u);
  EXPECT_NE(rep.degradation.front().outcome.find("bad_alloc"), std::string::npos);
  expect_coherent_trail(rep);
}

TEST(FaultInjection, PersistentAllocFailureIsCleanError) {
  FaultPlan plan;
  plan.add({FaultPoint::kUniqueGrowAlloc, /*at=*/0, 1.0, -1, -1, /*times=*/0});
  const BatchOutcome out = run_one(heavy_job(/*degrade=*/true, /*max_retries=*/2), plan);
  const JobReport& rep = out.results.front().report;
  // Every rung needs at least one table growth on this case, so all attempts
  // die and the job ends in a clean kError carrying the allocation message.
  EXPECT_EQ(rep.status, JobStatus::kError);
  EXPECT_NE(rep.error.find("bad_alloc"), std::string::npos) << rep.error;
  EXPECT_EQ(rep.attempts, 3u);
  expect_coherent_trail(rep);
}

// --- injection point: deadline expiry at step N, across flow stages ---------

// `at` sweeps the deadline across flow stages: materialization of the spec
// BDDs (first steps), mid-decomposition, and deep into the run. Each must
// end in kDegraded (the retry fits) or kOk (threshold past the job's total
// steps, so it never fires) — never a crash.
TEST(FaultInjection, DeadlineAtStepAcrossFlowStages) {
  for (const std::uint64_t at : {std::uint64_t{5}, std::uint64_t{2000},
                                 std::uint64_t{20000}}) {
    SCOPED_TRACE("deadline at step " + std::to_string(at));
    FaultPlan plan;
    plan.add({FaultPoint::kDeadlineAtStep, at, 1.0, -1, -1, /*times=*/1});
    const BatchOutcome out = run_one(heavy_job(), plan);
    const JobReport& rep = out.results.front().report;
    EXPECT_TRUE(rep.status == JobStatus::kOk || rep.status == JobStatus::kDegraded)
        << to_string(rep.status) << ": " << rep.error;
    EXPECT_EQ(rep.sat_verdict, 1);
    expect_coherent_trail(rep);
  }
}

TEST(FaultInjection, PersistentDeadlineExhaustsLadderCleanly) {
  FaultPlan plan;
  plan.add({FaultPoint::kDeadlineAtStep, /*at=*/5, 1.0, -1, -1, /*times=*/0});
  const BatchOutcome out = run_one(heavy_job(/*degrade=*/true, /*max_retries=*/3), plan);
  const JobReport& rep = out.results.front().report;
  EXPECT_EQ(rep.status, JobStatus::kTimeout);
  EXPECT_EQ(rep.attempts, 4u);
  ASSERT_EQ(rep.degradation.size(), 4u);
  // The ladder walked all the way down; even the Shannon rung was killed.
  EXPECT_EQ(rep.degradation.back().rung, DegradeRung::kShannon);
  expect_coherent_trail(rep);
}

// --- injection point: worker death ------------------------------------------

// A poisoned job kills every worker that picks it up; the queue must still
// fully drain (survivors first, then the engine's inline recovery pass) and
// every submitted job must end with a report.
TEST(FaultInjection, WorkerDeathNeverStrandsTheQueue) {
  for (const unsigned workers : {1u, 4u}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    EngineOptions opts;
    opts.num_workers = workers;
    opts.fault.add(
        {FaultPoint::kWorkerDeath, /*at=*/50, 1.0, /*job=*/3, -1, /*times=*/1});
    BatchEngine engine(std::move(opts));
    const char* files[] = {"gc_spike.pla", "add2.pla", "xor4.pla",
                           "gc_spike.pla", "achilles.pla", "exor_shared.pla",
                           "maj3.pla", "dc_heavy.pla"};
    for (const char* f : files) {
      JobSpec spec;
      spec.source = corpus(f);
      spec.verify = VerifyEngine::kBoth;
      engine.submit(std::move(spec));
    }
    const BatchOutcome out = engine.run();
    ASSERT_EQ(out.results.size(), 8u);
    EXPECT_GE(out.summary.worker_deaths, 1u);
    EXPECT_LE(out.summary.worker_deaths, workers);
    for (const JobResult& r : out.results) {
      SCOPED_TRACE(r.report.name + " (job " + std::to_string(r.report.job_id) + ")");
      EXPECT_EQ(r.report.status, JobStatus::kOk) << r.report.error;
      EXPECT_EQ(r.report.sat_verdict, 1);
    }
    EXPECT_EQ(out.summary.ok, 8u);
  }
}

TEST(FaultInjection, TargetedWorkerDeathSparesOtherWorkers) {
  EngineOptions opts;
  opts.num_workers = 2;
  // Only worker 1 is killable, and only once per pickup; worker 0 (or the
  // recovery pass) must finish everything.
  opts.fault.add(
      {FaultPoint::kWorkerDeath, /*at=*/10, 1.0, -1, /*worker=*/1, /*times=*/1});
  BatchEngine engine(std::move(opts));
  for (int i = 0; i < 6; ++i) {
    JobSpec spec;
    spec.source = corpus("gc_spike.pla");
    spec.verify = VerifyEngine::kBdd;
    engine.submit(std::move(spec));
  }
  const BatchOutcome out = engine.run();
  ASSERT_EQ(out.results.size(), 6u);
  EXPECT_LE(out.summary.worker_deaths, 1u);
  for (const JobResult& r : out.results) {
    EXPECT_EQ(r.report.status, JobStatus::kOk) << r.report.error;
  }
}

// --- matrix sweep: every point through the degradation ladder ---------------

TEST(FaultInjection, EveryInjectionPointEndsDegradedOrCleanlyFailed) {
  const FaultSpec specs[] = {
      {FaultPoint::kNodeBudgetTrip, 300, 1.0, -1, -1, 1},
      {FaultPoint::kCachePoison, 0, 1.0, -1, -1, 0},
      {FaultPoint::kUniqueGrowAlloc, 1, 1.0, -1, -1, 1},
      {FaultPoint::kDeadlineAtStep, 100, 1.0, -1, -1, 1},
      {FaultPoint::kWorkerDeath, 100, 1.0, -1, -1, 1},
  };
  for (const FaultSpec& f : specs) {
    SCOPED_TRACE(to_string(f.point));
    EngineOptions opts;
    opts.num_workers = 1;
    opts.degrade = true;
    opts.fault.add(f);
    BatchEngine engine(std::move(opts));
    engine.submit(heavy_job());
    const BatchOutcome out = engine.run();
    const JobReport& rep = out.results.front().report;
    EXPECT_TRUE(rep.status == JobStatus::kOk || rep.status == JobStatus::kDegraded ||
                rep.status == JobStatus::kTimeout || rep.status == JobStatus::kError)
        << to_string(rep.status);
    // Verified whenever a netlist exists; clean failure message otherwise.
    if (rep.status == JobStatus::kOk || rep.status == JobStatus::kDegraded) {
      EXPECT_EQ(rep.sat_verdict, 1);
    } else {
      EXPECT_FALSE(rep.error.empty());
    }
    expect_coherent_trail(rep);
  }
}

// --- determinism ------------------------------------------------------------

// Same seed + same FaultPlan ⇒ byte-identical stable reports, across three
// repeat runs AND across one-worker vs eight-worker scheduling.
TEST(FaultInjection, StableReportsAreByteIdenticalAcrossRunsAndWorkerCounts) {
  const auto run_stable = [&](unsigned workers) {
    EngineOptions opts;
    opts.num_workers = workers;
    opts.degrade = true;
    opts.fault.seed = 42;
    opts.fault.add({FaultPoint::kCachePoison, 0, 0.25, -1, -1, 0});
    opts.fault.add({FaultPoint::kDeadlineAtStep, 3000, 1.0, /*job=*/0, -1, 1});
    opts.fault.add({FaultPoint::kNodeBudgetTrip, 800, 1.0, /*job=*/2, -1, 1});
    opts.fault.add({FaultPoint::kWorkerDeath, 100, 1.0, /*job=*/4, -1, 1});
    BatchEngine engine(std::move(opts));
    const char* files[] = {"gc_spike.pla", "add2.pla", "gc_spike.pla",
                           "achilles.pla", "gc_spike.pla", "exor_shared.pla"};
    for (const char* f : files) {
      JobSpec spec;
      spec.source = corpus(f);
      spec.verify = VerifyEngine::kBoth;
      spec.max_retries = 2;
      engine.submit(std::move(spec));
    }
    const BatchOutcome out = engine.run();
    std::string all;
    for (const JobResult& r : out.results) {
      all += r.report.to_stable_json();
      all += '\n';
    }
    return all;
  };

  const std::string baseline = run_stable(1);
  EXPECT_FALSE(baseline.empty());
  for (int run = 0; run < 2; ++run) {
    EXPECT_EQ(run_stable(1), baseline) << "-j1 repeat " << run;
  }
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(run_stable(8), baseline) << "-j8 repeat " << run;
  }
}

// Sanity on the injector itself: the per-job RNG stream depends on the job
// id but never on the worker id, which is what makes the engine contract
// above possible at all.
TEST(FaultInjection, InjectorStreamIndependentOfWorkerId) {
  FaultPlan plan;
  plan.seed = 99;
  plan.add({FaultPoint::kCachePoison, 0, 0.5, -1, -1, 0});
  JobFaultInjector a(plan, /*job_id=*/3, /*worker_id=*/0);
  JobFaultInjector b(plan, /*job_id=*/3, /*worker_id=*/7);
  JobFaultInjector c(plan, /*job_id=*/4, /*worker_id=*/0);
  int same = 0, diff = 0;
  for (int i = 0; i < 64; ++i) {
    const bool pa = a.poison_cache_insert();
    const bool pb = b.poison_cache_insert();
    const bool pc = c.poison_cache_insert();
    EXPECT_EQ(pa, pb) << "draw " << i;
    (pa == pc ? same : diff) += 1;
  }
  EXPECT_GT(diff, 0) << "different jobs drew identical streams";
}

}  // namespace
}  // namespace bidec
