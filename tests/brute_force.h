// Shared brute-force oracles for the decomposability theorems: functions of
// up to 4 variables are represented as 16-bit masks, and decomposability is
// decided by enumerating every pair of component functions. Used to validate
// Theorem 1 (OR), its AND dual, Theorem 2 and Fig. 4 (EXOR).
#ifndef BIDEC_TESTS_BRUTE_FORCE_H
#define BIDEC_TESTS_BRUTE_FORCE_H

#include <cstdint>
#include <span>
#include <vector>

#include "bdd/bdd.h"
#include "isf/isf.h"

namespace bidec::testing {

/// Mask of all minterms of an n-variable function (n <= 4).
inline std::uint16_t full_mask(unsigned n) {
  return static_cast<std::uint16_t>((1u << (1u << n)) - 1u);
}

/// Truth mask of a BDD over the first n variables.
inline std::uint16_t bdd_to_mask(BddManager& mgr, const Bdd& f, unsigned n) {
  std::uint16_t mask = 0;
  std::vector<bool> in(mgr.num_vars(), false);
  for (unsigned m = 0; m < (1u << n); ++m) {
    for (unsigned v = 0; v < n; ++v) in[v] = (m >> v) & 1;
    if (mgr.eval(f, in)) mask |= static_cast<std::uint16_t>(1u << m);
  }
  return mask;
}

/// All functions of n variables (n <= 4) that do not depend on the variables
/// in `banned`, as full-space truth masks.
inline std::vector<std::uint16_t> functions_independent_of(
    unsigned n, std::span<const unsigned> banned) {
  std::vector<unsigned> free_vars;
  for (unsigned v = 0; v < n; ++v) {
    bool is_banned = false;
    for (const unsigned b : banned) is_banned |= (b == v);
    if (!is_banned) free_vars.push_back(v);
  }
  const unsigned k = static_cast<unsigned>(free_vars.size());
  std::vector<std::uint16_t> result;
  result.reserve(1u << (1u << k));
  for (std::uint32_t bits = 0; bits < (1u << (1u << k)); ++bits) {
    std::uint16_t lifted = 0;
    for (unsigned m = 0; m < (1u << n); ++m) {
      unsigned idx = 0;
      for (unsigned i = 0; i < k; ++i) idx |= ((m >> free_vars[i]) & 1u) << i;
      if ((bits >> idx) & 1u) lifted |= static_cast<std::uint16_t>(1u << m);
    }
    result.push_back(lifted);
  }
  return result;
}

enum class BruteGate { kOr, kAnd, kExor };

/// Exhaustive decomposability: exists fA independent of xb and fB
/// independent of xa with Q <= gate(fA, fB) <= ~R?
inline bool brute_force_decomposable(BddManager& mgr, const Isf& isf, unsigned n,
                                     std::span<const unsigned> xa,
                                     std::span<const unsigned> xb, BruteGate gate) {
  const std::uint16_t q = bdd_to_mask(mgr, isf.q(), n);
  const std::uint16_t r = bdd_to_mask(mgr, isf.r(), n);
  const std::vector<std::uint16_t> fas = functions_independent_of(n, xb);
  const std::vector<std::uint16_t> fbs = functions_independent_of(n, xa);
  for (const std::uint16_t fa : fas) {
    for (const std::uint16_t fb : fbs) {
      std::uint16_t f = 0;
      switch (gate) {
        case BruteGate::kOr: f = fa | fb; break;
        case BruteGate::kAnd: f = fa & fb; break;
        case BruteGate::kExor: f = fa ^ fb; break;
      }
      if ((q & ~f) == 0 && (f & r) == 0) return true;
    }
  }
  return false;
}

}  // namespace bidec::testing

#endif  // BIDEC_TESTS_BRUTE_FORCE_H
