// Basic BDD package behaviour: terminals, variables, handle semantics,
// canonicity, reference counting and garbage collection.
#include "bdd/bdd.h"

#include <gtest/gtest.h>

namespace bidec {
namespace {

TEST(BddBasic, TerminalsAreDistinctAndConstant) {
  BddManager mgr(4);
  const Bdd f = mgr.bdd_false();
  const Bdd t = mgr.bdd_true();
  EXPECT_TRUE(f.is_false());
  EXPECT_TRUE(t.is_true());
  EXPECT_TRUE(f.is_const());
  EXPECT_TRUE(t.is_const());
  EXPECT_NE(f, t);
  EXPECT_EQ(~f, t);
  EXPECT_EQ(~t, f);
}

TEST(BddBasic, DefaultHandleIsInvalid) {
  const Bdd empty;
  EXPECT_FALSE(empty.is_valid());
  EXPECT_FALSE(empty.is_false());
  EXPECT_FALSE(empty.is_true());
}

TEST(BddBasic, VariablesAreCanonical) {
  BddManager mgr(4);
  const Bdd x0a = mgr.var(0);
  const Bdd x0b = mgr.var(0);
  EXPECT_EQ(x0a, x0b);
  EXPECT_EQ(x0a.id(), x0b.id());
  EXPECT_NE(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.nvar(2), ~mgr.var(2));
}

TEST(BddBasic, VarOutOfRangeThrows) {
  BddManager mgr(3);
  EXPECT_THROW((void)mgr.var(3), std::out_of_range);
  EXPECT_THROW((void)mgr.nvar(7), std::out_of_range);
}

TEST(BddBasic, ConnectivesSatisfyBooleanIdentities) {
  BddManager mgr(4);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  const Bdd c = mgr.var(2);
  EXPECT_EQ(a & b, b & a);
  EXPECT_EQ(a | b, b | a);
  EXPECT_EQ(a ^ b, b ^ a);
  EXPECT_EQ((a & b) & c, a & (b & c));
  EXPECT_EQ(a & (b | c), (a & b) | (a & c));
  EXPECT_EQ(~(a & b), ~a | ~b);
  EXPECT_EQ(a ^ a, mgr.bdd_false());
  EXPECT_EQ(a ^ ~a, mgr.bdd_true());
  EXPECT_EQ(a - b, a & ~b);
  EXPECT_EQ(mgr.apply_xnor(a, b), ~(a ^ b));
}

TEST(BddBasic, CanonicityMergesEquivalentFunctions) {
  BddManager mgr(4);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  // Two syntactically different constructions of the same function.
  const Bdd f1 = (a & b) | (a & ~b);
  const Bdd f2 = a;
  EXPECT_EQ(f1.id(), f2.id());
}

TEST(BddBasic, IteMatchesDefinition) {
  BddManager mgr(4);
  const Bdd f = mgr.var(0);
  const Bdd g = mgr.var(1) & mgr.var(2);
  const Bdd h = mgr.var(3);
  EXPECT_EQ(mgr.ite(f, g, h), (f & g) | (~f & h));
}

TEST(BddBasic, TopVarAndChildren) {
  BddManager mgr(4);
  const Bdd f = mgr.var(1) | (mgr.var(2) & mgr.var(3));
  EXPECT_EQ(f.top_var(), 1u);
  EXPECT_EQ(f.high(), mgr.bdd_true());
  EXPECT_EQ(f.low(), mgr.var(2) & mgr.var(3));
}

TEST(BddBasic, ImpliesAndDisjoint) {
  BddManager mgr(3);
  const Bdd a = mgr.var(0);
  const Bdd b = mgr.var(1);
  EXPECT_TRUE((a & b).implies(a));
  EXPECT_FALSE(a.implies(a & b));
  EXPECT_TRUE(a.disjoint_with(~a));
  EXPECT_FALSE(a.disjoint_with(a | b));
}

TEST(BddBasic, MakeCubePositive) {
  BddManager mgr(5);
  const Bdd cube = mgr.make_cube({1, 3});
  EXPECT_EQ(cube, mgr.var(1) & mgr.var(3));
}

TEST(BddBasic, MakeCubeFromLits) {
  BddManager mgr(4);
  CubeLits lits(4, -1);
  lits[0] = 1;
  lits[2] = 0;
  EXPECT_EQ(mgr.make_cube(lits), mgr.var(0) & ~mgr.var(2));
}

TEST(BddBasic, DagSizeCountsSharedNodesOnce) {
  BddManager mgr(4);
  const Bdd a = mgr.var(0);
  EXPECT_EQ(a.dag_size(), 2u);  // node + the shared terminal (complement edges)
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) & mgr.var(3));
  const Bdd fs[] = {f, f};
  EXPECT_EQ(mgr.dag_size(fs), f.dag_size());
}

TEST(BddBasic, GarbageCollectionKeepsLiveHandles) {
  BddManager mgr(8);
  Bdd keep = mgr.var(0);
  for (int i = 0; i < 200; ++i) {
    // Dead intermediates.
    (void)(mgr.var(i % 8) & mgr.var((i + 1) % 8) & mgr.var((i + 3) % 8));
    keep = keep ^ mgr.var((i + 5) % 8);
  }
  const Bdd snapshot = keep;
  const std::size_t before = mgr.live_node_count();
  mgr.collect_garbage();
  EXPECT_LE(mgr.live_node_count(), before);
  EXPECT_EQ(keep, snapshot);
  // The function still evaluates correctly after collection.
  std::vector<bool> input(8, true);
  (void)mgr.eval(keep, input);
  EXPECT_GE(mgr.stats().gc_runs, 1u);
}

TEST(BddBasic, GcReclaimsDeadNodes) {
  BddManager mgr(10);
  {
    Bdd big = mgr.bdd_false();
    for (unsigned i = 0; i + 1 < 10; ++i) big |= mgr.var(i) & mgr.var(i + 1);
  }
  const std::size_t live_before = mgr.live_node_count();
  mgr.collect_garbage();
  EXPECT_LT(mgr.live_node_count(), live_before);
}

TEST(BddBasic, HandleCopyAndMoveSemantics) {
  BddManager mgr(3);
  Bdd a = mgr.var(0) & mgr.var(1);
  Bdd b = a;  // copy
  EXPECT_EQ(a, b);
  Bdd c = std::move(a);
  EXPECT_FALSE(a.is_valid());  // NOLINT(bugprone-use-after-move): testing move state
  EXPECT_EQ(c, b);
  a = c;  // copy-assign back
  EXPECT_EQ(a, c);
  b = std::move(c);
  EXPECT_FALSE(c.is_valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a, b);
  a = a;  // self-assignment is a no-op
  EXPECT_EQ(a, b);
}

TEST(BddBasic, EvalWalksToTerminal) {
  BddManager mgr(3);
  const Bdd f = (mgr.var(0) & mgr.var(1)) ^ mgr.var(2);
  for (unsigned m = 0; m < 8; ++m) {
    const std::vector<bool> in{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const bool expected = ((m & 1) != 0 && (m & 2) != 0) != ((m & 4) != 0);
    EXPECT_EQ(mgr.eval(f, in), expected) << "minterm " << m;
  }
}

TEST(BddBasic, ToStringAndDotAreNonEmpty) {
  BddManager mgr(3);
  const Bdd f = mgr.var(0) ^ mgr.var(1);
  EXPECT_NE(mgr.to_string(f).find("ITE"), std::string::npos);
  EXPECT_NE(mgr.to_dot(f).find("digraph"), std::string::npos);
  EXPECT_EQ(mgr.to_string(mgr.bdd_false()), "const0");
  EXPECT_EQ(mgr.to_string(mgr.bdd_true()), "const1");
}

TEST(BddBasic, ComputedCacheSurvivesGarbageCollection) {
  // GC sweeps only the cache entries whose operands died; results about live
  // nodes stay cached, so recomputing after a forced collection must hit.
  BddManager mgr(10);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) & mgr.var(3));
  const Bdd g = (mgr.var(4) ^ mgr.var(5)) | mgr.var(6);
  const Bdd r = f & g;
  mgr.collect_garbage();
  const BddStats after_gc = mgr.stats();
  EXPECT_GT(after_gc.cache_kept, 0u);  // the f&g entry survived the sweep
  const Bdd r2 = f & g;
  EXPECT_EQ(r2, r);
  EXPECT_GT(mgr.stats().cache_hits, after_gc.cache_hits)
      << "recomputation after GC should be a cache hit, not a rebuild";
}

TEST(BddBasic, GcSweepsCacheEntriesOfDeadNodes) {
  BddManager mgr(10);
  {
    Bdd scratch = mgr.bdd_false();
    for (unsigned i = 0; i + 1 < 10; ++i) scratch |= mgr.var(i) & mgr.var(i + 1);
  }  // every intermediate dies here
  mgr.collect_garbage();
  EXPECT_GT(mgr.stats().cache_swept, 0u)
      << "entries referencing reclaimed nodes must leave the cache";
}

TEST(BddBasic, GcThresholdGrowsAndDecaysBackToFloor) {
  // Regression for the threshold ratchet: maybe_gc doubles the threshold
  // when a collection reclaims little, but collect_garbage must decay it
  // again once the live set shrinks — otherwise one transient spike disables
  // automatic GC for the manager's remaining lifetime (the batch engine
  // reuses managers across jobs, so the ratchet leaked across jobs).
  BddManager mgr(16);
  mgr.set_gc_threshold(64);
  const std::size_t floor = mgr.gc_threshold();
  // Spike: hold everything live so auto-GC keeps reclaiming nothing and the
  // threshold ratchets upward.
  std::vector<Bdd> held;
  Bdd acc = mgr.bdd_true();
  for (unsigned round = 0; round < 6 && mgr.gc_threshold() <= floor; ++round) {
    for (unsigned i = 0; i + 1 < 16; ++i) {
      acc = acc ^ (mgr.var(i) & mgr.var(i + 1));
      held.push_back(acc);
    }
  }
  ASSERT_GT(mgr.gc_threshold(), floor) << "test needs the threshold to ratchet up";
  // Drop the spike; repeated collections must walk the threshold back down.
  held.clear();
  acc = mgr.bdd_true();
  for (int i = 0; i < 20 && mgr.gc_threshold() > floor; ++i) mgr.collect_garbage();
  EXPECT_EQ(mgr.gc_threshold(), floor)
      << "threshold must decay to the configured floor after the live set shrinks";
}

TEST(BddBasic, CacheGrowsTowardBudgetAndReportsEntries) {
  BddManager mgr(14, /*initial_capacity=*/1024);
  const std::size_t initial = mgr.cache_entries();
  mgr.set_cache_budget(1u << 16);
  Bdd acc = mgr.bdd_false();
  for (unsigned i = 0; i < 14; ++i) {
    for (unsigned j = i + 1; j < 14; ++j) {
      acc ^= mgr.var(i) & mgr.var(j);
    }
  }
  (void)acc;
  EXPECT_GT(mgr.stats().cache_inserts, 0u);
  if (mgr.stats().cache_resizes > 0) {
    EXPECT_GT(mgr.cache_entries(), initial);
  }
  EXPECT_LE(mgr.cache_entries(), 1u << 16);
}

TEST(BddBasic, StatsTrackNodesAndCache) {
  BddManager mgr(6);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) ^ mgr.var(3));
  (void)f;
  const BddStats& s = mgr.stats();
  EXPECT_GT(s.live_nodes, 2u);
  EXPECT_GE(s.peak_nodes, s.live_nodes);
  EXPECT_GT(s.unique_misses, 0u);
}

}  // namespace
}  // namespace bidec
