// Model queries and covers: sat_count, cube/minterm picking, ISOP.
#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

TEST(BddSatCount, MatchesTruthTableCount) {
  std::mt19937_64 rng(11);
  for (unsigned nv = 2; nv <= 8; ++nv) {
    BddManager mgr(nv);
    const TruthTable t = TruthTable::random(nv, rng);
    const Bdd f = t.to_bdd(mgr);
    EXPECT_DOUBLE_EQ(mgr.sat_count(f), static_cast<double>(t.count_ones())) << nv;
  }
}

TEST(BddSatCount, Constants) {
  BddManager mgr(5);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_false()), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_true()), 32.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(3)), 16.0);
}

TEST(BddPickCube, CubeIsContainedInFunction) {
  std::mt19937_64 rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    BddManager mgr(6);
    TruthTable t = TruthTable::random(6, rng, 0.3);
    if (t.is_zero()) t.set(5, true);
    const Bdd f = t.to_bdd(mgr);
    const Bdd cube = mgr.pick_one_cube(f);
    EXPECT_FALSE(cube.is_false());
    EXPECT_TRUE(cube.implies(f));
  }
}

TEST(BddPickCube, ThrowsOnEmptyFunction) {
  BddManager mgr(3);
  EXPECT_THROW((void)mgr.pick_one_cube(mgr.bdd_false()), std::invalid_argument);
}

TEST(BddPickCube, TautologyGivesUniversalCube) {
  BddManager mgr(3);
  const CubeLits lits = mgr.pick_one_cube_lits(mgr.bdd_true());
  for (const signed char l : lits) EXPECT_EQ(l, -1);
}

TEST(BddPickMinterm, MintermSatisfiesFunction) {
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    BddManager mgr(7);
    TruthTable t = TruthTable::random(7, rng, 0.2);
    if (t.is_zero()) t.set(17, true);
    const Bdd f = t.to_bdd(mgr);
    const std::vector<bool> m = mgr.pick_one_minterm(f);
    EXPECT_TRUE(mgr.eval(f, m));
  }
}

TEST(BddPickMinterm, DeterministicChoice) {
  BddManager mgr(4);
  const Bdd f = mgr.var(1) | mgr.var(3);
  // Prefers the 0-branch: x1=0 then x3=1 is the lexicographically first path.
  const std::vector<bool> m = mgr.pick_one_minterm(f);
  EXPECT_FALSE(m[1]);
  EXPECT_TRUE(m[3]);
}

class IsopProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsopProperty, CoverLiesInInterval) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 3 + static_cast<unsigned>(GetParam() % 5);
  BddManager mgr(nv);
  const TruthTable on = TruthTable::random(nv, rng, 0.35);
  const TruthTable dc = TruthTable::random(nv, rng, 0.25);
  const Bdd lower = (on - dc).to_bdd(mgr);
  const Bdd upper = lower | dc.to_bdd(mgr);

  const std::vector<CubeLits> cover = mgr.isop(lower, upper);
  const Bdd cover_fn = mgr.cover_to_bdd(cover);
  EXPECT_TRUE(lower.implies(cover_fn));
  EXPECT_TRUE(cover_fn.implies(upper));
  EXPECT_EQ(cover_fn, mgr.isop_bdd(lower, upper));
}

TEST_P(IsopProperty, CoverIsIrredundant) {
  std::mt19937_64 rng(GetParam() + 100);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const TruthTable on = TruthTable::random(nv, rng, 0.4);
  const Bdd f = on.to_bdd(mgr);
  const std::vector<CubeLits> cover = mgr.isop(f, f);
  // Dropping any single cube must lose an on-set point.
  for (std::size_t skip = 0; skip < cover.size(); ++skip) {
    Bdd partial = mgr.bdd_false();
    for (std::size_t i = 0; i < cover.size(); ++i) {
      if (i != skip) partial |= mgr.make_cube(cover[i]);
    }
    EXPECT_NE(partial, f) << "cube " << skip << " is redundant";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsopProperty, ::testing::Range<std::uint64_t>(0, 10));

TEST(Isop, ExactFunctionCoverEqualsFunction) {
  BddManager mgr(4);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) ^ mgr.var(3));
  EXPECT_EQ(mgr.isop_bdd(f, f), f);
}

TEST(Isop, RejectsInvertedInterval) {
  BddManager mgr(3);
  const Bdd a = mgr.var(0);
  EXPECT_THROW((void)mgr.isop(a | mgr.var(1), a), std::invalid_argument);
}

TEST(Isop, ConstantsAreTrivial) {
  BddManager mgr(3);
  EXPECT_TRUE(mgr.isop(mgr.bdd_false(), mgr.bdd_false()).empty());
  const auto taut = mgr.isop(mgr.bdd_true(), mgr.bdd_true());
  ASSERT_EQ(taut.size(), 1u);
  for (const signed char l : taut[0]) EXPECT_EQ(l, -1);
}

TEST(Isop, UsesDontCaresToShrinkCover) {
  BddManager mgr(4);
  // on = minterm 0000, dc = everything else with x0=0: cover can be ~x0.
  const Bdd lower = mgr.make_cube(CubeLits{0, 0, 0, 0});
  const Bdd upper = ~mgr.var(0);
  const auto cover = mgr.isop(lower, upper);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(mgr.make_cube(cover[0]), upper);
}

}  // namespace
}  // namespace bidec
