// Multiple-valued bi-decomposition (the paper's future-work extension):
// threshold encoding, MAX/MIN checks against brute force, component
// derivation, the full MV decomposer.
#include <gtest/gtest.h>

#include <random>

#include "mv/mv_decompose.h"
#include "tt/truth_table.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

/// A random completely specified k-valued function as a TruthTable of
/// values (index = minterm, entry = value).
std::vector<unsigned> random_mv_values(unsigned nv, unsigned k, std::mt19937_64& rng) {
  std::uniform_int_distribution<unsigned> pick(0, k - 1);
  std::vector<unsigned> values(std::size_t{1} << nv);
  for (auto& v : values) v = pick(rng);
  return values;
}

MvIsf mv_from_values(BddManager& mgr, const std::vector<unsigned>& values, unsigned k) {
  const auto nv = static_cast<unsigned>(std::countr_zero(values.size()));
  std::vector<Bdd> sets(k, mgr.bdd_false());
  for (std::uint64_t m = 0; m < values.size(); ++m) {
    CubeLits lits(nv, -1);
    for (unsigned v = 0; v < nv; ++v) lits[v] = static_cast<signed char>((m >> v) & 1);
    sets[values[m]] |= mgr.make_cube(lits);
  }
  return MvIsf::from_value_sets(mgr, std::move(sets));
}

/// Brute-force MAX/MIN decomposability for tiny completely specified MV
/// functions: enumerate all component functions over the reduced spaces.
bool brute_force_mv_decomposable(const std::vector<unsigned>& values, unsigned nv,
                                 unsigned k, std::span<const unsigned> xa,
                                 std::span<const unsigned> xb, bool is_max) {
  // Components: A independent of xb, B independent of xa.
  const auto independent_index = [nv](std::uint64_t m, std::span<const unsigned> banned) {
    std::uint64_t idx = 0;
    unsigned bit = 0;
    for (unsigned v = 0; v < nv; ++v) {
      bool is_banned = false;
      for (const unsigned b : banned) is_banned |= b == v;
      if (is_banned) continue;
      idx |= ((m >> v) & 1) << bit;
      ++bit;
    }
    return idx;
  };
  const unsigned free_a = nv - static_cast<unsigned>(xb.size());
  const unsigned free_b = nv - static_cast<unsigned>(xa.size());
  const std::uint64_t na = std::uint64_t{1} << free_a;
  const std::uint64_t nb = std::uint64_t{1} << free_b;
  // Enumerate all k^na * k^nb pairs -- only feasible for tiny sizes.
  std::vector<unsigned> fa(na, 0), fb(nb, 0);
  const auto advance = [k](std::vector<unsigned>& digits) {
    for (auto& d : digits) {
      if (++d < k) return true;
      d = 0;
    }
    return false;
  };
  do {
    std::fill(fb.begin(), fb.end(), 0u);
    do {
      bool ok = true;
      for (std::uint64_t m = 0; m < (std::uint64_t{1} << nv) && ok; ++m) {
        const unsigned a = fa[independent_index(m, xb)];
        const unsigned b = fb[independent_index(m, xa)];
        const unsigned val = is_max ? std::max(a, b) : std::min(a, b);
        ok = val == values[m];
      }
      if (ok) return true;
    } while (advance(fb));
  } while (advance(fa));
  return false;
}

TEST(MvIsf, FromValueSetsThresholds) {
  BddManager mgr(2);
  // F(a,b): value = a + b (0..2), a 3-valued half adder sum.
  std::vector<Bdd> sets(3);
  const Bdd a = mgr.var(0), b = mgr.var(1);
  sets[0] = ~a & ~b;
  sets[1] = a ^ b;
  sets[2] = a & b;
  const MvIsf f = MvIsf::from_value_sets(mgr, sets);
  EXPECT_EQ(f.num_values(), 3u);
  EXPECT_EQ(f.threshold(1).q(), a | b);   // F >= 1
  EXPECT_EQ(f.threshold(2).q(), a & b);   // F >= 2
  EXPECT_TRUE(f.threshold(1).is_csf());
}

TEST(MvIsf, RejectsOverlappingSets) {
  BddManager mgr(2);
  std::vector<Bdd> sets{mgr.var(0), mgr.var(0) & mgr.var(1)};
  EXPECT_THROW((void)MvIsf::from_value_sets(mgr, sets), std::invalid_argument);
}

TEST(MvIsf, RejectsNonMonotoneChain) {
  BddManager mgr(2);
  std::vector<Isf> chain;
  chain.push_back(Isf::from_csf(mgr.var(0)));
  chain.push_back(Isf::from_csf(mgr.var(1)));  // not nested in var(0)
  EXPECT_THROW((void)MvIsf::from_thresholds(std::move(chain)), std::invalid_argument);
}

TEST(MvIsf, UnspecifiedInputsAllowEverything) {
  BddManager mgr(2);
  std::vector<Bdd> sets(3, mgr.bdd_false());
  sets[0] = ~mgr.var(0) & ~mgr.var(1);
  sets[2] = mgr.var(0) & mgr.var(1);
  const MvIsf f = MvIsf::from_value_sets(mgr, sets);  // 01,10 unspecified
  EXPECT_EQ(f.min_allowed({false, false}), 0u);
  EXPECT_EQ(f.max_allowed({false, false}), 0u);
  EXPECT_EQ(f.min_allowed({true, false}), 0u);
  EXPECT_EQ(f.max_allowed({true, false}), 2u);
  EXPECT_TRUE(f.value_allowed({true, false}, 1));
  EXPECT_FALSE(f.value_allowed({true, true}, 0));
}

TEST(MvIsf, MonotoneCoversAreNestedAndCompatible) {
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    BddManager mgr(4);
    const std::vector<unsigned> values = random_mv_values(4, 4, rng);
    const MvIsf f = mv_from_values(mgr, values, 4);
    const std::vector<Bdd> covers = f.monotone_covers();
    ASSERT_EQ(covers.size(), 3u);
    EXPECT_TRUE(covers[1].implies(covers[0]));
    EXPECT_TRUE(covers[2].implies(covers[1]));
    for (unsigned j = 1; j <= 3; ++j) {
      EXPECT_TRUE(f.threshold(j).is_compatible(covers[j - 1])) << trial << " " << j;
    }
  }
}

TEST(MvCheck, MaxOfDisjointHalves) {
  // F = MAX(g(a,b), h(c,d)) is MAX-decomposable with xa={0,1}, xb={2,3}.
  BddManager mgr(4);
  std::vector<Bdd> g_sets{~mgr.var(0), mgr.var(0) & ~mgr.var(1), mgr.var(0) & mgr.var(1)};
  std::vector<Bdd> h_sets{~mgr.var(2), mgr.var(2) & ~mgr.var(3), mgr.var(2) & mgr.var(3)};
  // Compose MAX pointwise into value sets.
  std::vector<unsigned> values(16);
  for (unsigned m = 0; m < 16; ++m) {
    const unsigned g = (m & 1) ? ((m & 2) ? 2 : 1) : 0;
    const unsigned h = (m & 4) ? ((m & 8) ? 2 : 1) : 0;
    values[m] = std::max(g, h);
  }
  const MvIsf f = mv_from_values(mgr, values, 3);
  const unsigned xa[] = {0, 1}, xb[] = {2, 3};
  EXPECT_TRUE(check_max_decomposable(f, xa, xb));
}

class MvCheckVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MvCheckVsBruteForce, SingletonPairsThreeValues) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 3, k = 3;
  BddManager mgr(nv);
  const std::vector<unsigned> values = random_mv_values(nv, k, rng);
  const MvIsf f = mv_from_values(mgr, values, k);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = a + 1; b < nv; ++b) {
      const unsigned xa[] = {a}, xb[] = {b};
      EXPECT_EQ(check_max_decomposable(f, xa, xb),
                brute_force_mv_decomposable(values, nv, k, xa, xb, true))
          << "max xa=" << a << " xb=" << b;
      EXPECT_EQ(check_min_decomposable(f, xa, xb),
                brute_force_mv_decomposable(values, nv, k, xa, xb, false))
          << "min xa=" << a << " xb=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvCheckVsBruteForce, ::testing::Range<std::uint64_t>(0, 8));

TEST(MvDerive, ComponentsComposeBack) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const unsigned nv = 4, k = 3;
    BddManager mgr(nv);
    const std::vector<unsigned> values = random_mv_values(nv, k, rng);
    const MvIsf f = mv_from_values(mgr, values, k);
    for (unsigned a = 0; a < nv; ++a) {
      for (unsigned b = a + 1; b < nv; ++b) {
        const unsigned xa[] = {a}, xb[] = {b};
        if (!check_max_decomposable(f, xa, xb)) continue;
        const MvIsf fa = derive_max_component_a(f, xa, xb);
        const std::vector<Bdd> fa_covers = fa.monotone_covers();
        const MvIsf fb = derive_max_component_b(f, fa_covers, xa);
        const std::vector<Bdd> fb_covers = fb.monotone_covers();
        // MAX composition: per-threshold OR must be compatible with f.
        for (unsigned j = 1; j < k; ++j) {
          EXPECT_TRUE(f.threshold(j).is_compatible(fa_covers[j - 1] | fb_covers[j - 1]))
              << "trial " << trial << " level " << j;
        }
      }
    }
  }
}

TEST(MvDecompose, RealizesRandomFunctionsExactly) {
  std::mt19937_64 rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    const unsigned nv = 4 + trial % 2, k = 3 + trial % 2;
    BddManager mgr(nv);
    const std::vector<unsigned> values = random_mv_values(nv, k, rng);
    const MvIsf f = mv_from_values(mgr, values, k);
    const MvRealization real = decompose_mv(f);
    ASSERT_EQ(real.netlist.num_outputs(), k - 1);
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << nv); ++m) {
      std::vector<bool> in(nv);
      for (unsigned v = 0; v < nv; ++v) in[v] = (m >> v) & 1;
      EXPECT_EQ(mv_evaluate(real.netlist, in), values[m])
          << "trial " << trial << " minterm " << m;
    }
  }
}

TEST(MvDecompose, ThresholdOutputsAreMonotone) {
  std::mt19937_64 rng(22);
  BddManager mgr(5);
  const std::vector<unsigned> values = random_mv_values(5, 4, rng);
  const MvIsf f = mv_from_values(mgr, values, 4);
  const MvRealization real = decompose_mv(f);
  for (std::uint64_t m = 0; m < 32; ++m) {
    std::vector<bool> in(5);
    for (unsigned v = 0; v < 5; ++v) in[v] = (m >> v) & 1;
    const std::vector<bool> outs = real.netlist.evaluate(in);
    for (std::size_t j = 1; j < outs.size(); ++j) {
      EXPECT_LE(outs[j], outs[j - 1]) << "thresholds not nested at minterm " << m;
    }
  }
}

TEST(MvDecompose, FindsMaxStructure) {
  // MAX of two independent 3-valued halves: the MV-level split must fire.
  BddManager mgr(4);
  std::vector<unsigned> values(16);
  for (unsigned m = 0; m < 16; ++m) {
    const unsigned g = (m & 1) + ((m >> 1) & 1);       // 0..2 over a,b
    const unsigned h = ((m >> 2) & 1) + ((m >> 3) & 1);  // 0..2 over c,d
    values[m] = std::max(g, h);
  }
  const MvIsf f = mv_from_values(mgr, values, 3);
  const MvRealization real = decompose_mv(f);
  EXPECT_GE(real.max_splits, 1u);
  for (unsigned m = 0; m < 16; ++m) {
    std::vector<bool> in(4);
    for (unsigned v = 0; v < 4; ++v) in[v] = (m >> v) & 1;
    EXPECT_EQ(mv_evaluate(real.netlist, in), values[m]);
  }
}

TEST(MvDecompose, FindsMinStructure) {
  BddManager mgr(4);
  std::vector<unsigned> values(16);
  for (unsigned m = 0; m < 16; ++m) {
    const unsigned g = (m & 1) + ((m >> 1) & 1);
    const unsigned h = ((m >> 2) & 1) + ((m >> 3) & 1);
    values[m] = std::min(g, h);
  }
  const MvIsf f = mv_from_values(mgr, values, 3);
  const MvRealization real = decompose_mv(f);
  EXPECT_GE(real.min_splits, 1u);
  for (unsigned m = 0; m < 16; ++m) {
    std::vector<bool> in(4);
    for (unsigned v = 0; v < 4; ++v) in[v] = (m >> v) & 1;
    EXPECT_EQ(mv_evaluate(real.netlist, in), values[m]);
  }
}

TEST(MvDecompose, BinaryCaseDegeneratesToBidecomp) {
  // k = 2 is ordinary binary decomposition with one threshold.
  std::mt19937_64 rng(23);
  BddManager mgr(5);
  const std::vector<unsigned> values = random_mv_values(5, 2, rng);
  const MvIsf f = mv_from_values(mgr, values, 2);
  const MvRealization real = decompose_mv(f);
  ASSERT_EQ(real.netlist.num_outputs(), 1u);
  for (unsigned m = 0; m < 32; ++m) {
    std::vector<bool> in(5);
    for (unsigned v = 0; v < 5; ++v) in[v] = (m >> v) & 1;
    EXPECT_EQ(mv_evaluate(real.netlist, in), values[m]);
  }
}

}  // namespace
}  // namespace bidec
