// Property tests: every BDD operation is validated against the dense
// truth-table golden model on randomized functions of 3..8 variables.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "bdd/bdd.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

struct RandomCase {
  unsigned num_vars;
  std::uint64_t seed;
};

class BddVsTruthTable : public ::testing::TestWithParam<RandomCase> {
 protected:
  void SetUp() override {
    rng_.seed(GetParam().seed);
    nv_ = GetParam().num_vars;
    mgr_ = std::make_unique<BddManager>(nv_);
    f_tt_ = TruthTable::random(nv_, rng_);
    g_tt_ = TruthTable::random(nv_, rng_);
    f_ = f_tt_.to_bdd(*mgr_);
    g_ = g_tt_.to_bdd(*mgr_);
  }

  TruthTable round_trip(const Bdd& h) { return TruthTable::from_bdd(*mgr_, h, nv_); }

  std::mt19937_64 rng_;
  unsigned nv_ = 0;
  std::unique_ptr<BddManager> mgr_;
  TruthTable f_tt_{1}, g_tt_{1};
  Bdd f_, g_;
};

TEST_P(BddVsTruthTable, RoundTrip) {
  EXPECT_EQ(round_trip(f_), f_tt_);
  EXPECT_EQ(round_trip(g_), g_tt_);
}

TEST_P(BddVsTruthTable, Connectives) {
  EXPECT_EQ(round_trip(f_ & g_), f_tt_ & g_tt_);
  EXPECT_EQ(round_trip(f_ | g_), f_tt_ | g_tt_);
  EXPECT_EQ(round_trip(f_ ^ g_), f_tt_ ^ g_tt_);
  EXPECT_EQ(round_trip(~f_), ~f_tt_);
  EXPECT_EQ(round_trip(f_ - g_), f_tt_ - g_tt_);
  EXPECT_EQ(round_trip(mgr_->apply_xnor(f_, g_)), ~(f_tt_ ^ g_tt_));
  EXPECT_EQ(round_trip(mgr_->ite(f_, g_, ~g_)), (f_tt_ & g_tt_) | (~f_tt_ & ~g_tt_));
}

TEST_P(BddVsTruthTable, CofactorsEveryVariable) {
  for (unsigned v = 0; v < nv_; ++v) {
    EXPECT_EQ(round_trip(mgr_->cofactor(f_, v, false)), f_tt_.cofactor(v, false));
    EXPECT_EQ(round_trip(mgr_->cofactor(f_, v, true)), f_tt_.cofactor(v, true));
  }
}

TEST_P(BddVsTruthTable, SingleVariableQuantifiers) {
  for (unsigned v = 0; v < nv_; ++v) {
    const unsigned vars[] = {v};
    EXPECT_EQ(round_trip(mgr_->exists(f_, vars)), f_tt_.exists(v));
    EXPECT_EQ(round_trip(mgr_->forall(f_, vars)), f_tt_.forall(v));
    EXPECT_EQ(round_trip(mgr_->derivative(f_, v)), f_tt_.derivative(v));
  }
}

TEST_P(BddVsTruthTable, MultiVariableQuantifiers) {
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < nv_; v += 2) vars.push_back(v);
  EXPECT_EQ(round_trip(mgr_->exists(f_, vars)), f_tt_.exists(vars));
  EXPECT_EQ(round_trip(mgr_->forall(f_, vars)), f_tt_.forall(vars));
}

TEST_P(BddVsTruthTable, AndExistsEqualsComposition) {
  std::vector<unsigned> vars;
  for (unsigned v = 1; v < nv_; v += 2) vars.push_back(v);
  const Bdd cube = mgr_->make_cube(vars);
  EXPECT_EQ(mgr_->and_exists(f_, g_, cube), mgr_->exists(f_ & g_, cube));
}

TEST_P(BddVsTruthTable, CofactorCubeMatchesIteratedCofactor) {
  CubeLits lits(nv_, -1);
  lits[0] = 1;
  if (nv_ > 2) lits[2] = 0;
  const Bdd cube = mgr_->make_cube(lits);
  TruthTable expect = f_tt_.cofactor(0, true);
  if (nv_ > 2) expect = expect.cofactor(2, false);
  EXPECT_EQ(round_trip(mgr_->cofactor_cube(f_, cube)), expect);
}

TEST_P(BddVsTruthTable, ComposeMatchesSubstitution) {
  const unsigned v = nv_ / 2;
  const Bdd composed = mgr_->compose(f_, v, g_);
  // Shannon: f[v <- g] = (g & f|v=1) | (~g & f|v=0).
  const TruthTable expect =
      (g_tt_ & f_tt_.cofactor(v, true)) | (~g_tt_ & f_tt_.cofactor(v, false));
  EXPECT_EQ(round_trip(composed), expect);
}

TEST_P(BddVsTruthTable, VectorComposeIdentity) {
  std::vector<Bdd> subst;
  for (unsigned v = 0; v < nv_; ++v) subst.push_back(mgr_->var(v));
  EXPECT_EQ(mgr_->vector_compose(f_, subst), f_);
}

TEST_P(BddVsTruthTable, PermuteRotation) {
  std::vector<unsigned> perm(nv_);
  for (unsigned v = 0; v < nv_; ++v) perm[v] = (v + 1) % nv_;
  const Bdd rotated = mgr_->permute(f_, perm);
  // Check by evaluation: rotated(x) = f(x applied through perm).
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << nv_); ++m) {
    std::vector<bool> in(nv_);
    for (unsigned v = 0; v < nv_; ++v) in[v] = (m >> v) & 1;
    std::vector<bool> pre(nv_);
    for (unsigned v = 0; v < nv_; ++v) pre[v] = in[perm[v]];
    EXPECT_EQ(mgr_->eval(rotated, in), f_tt_.get([&] {
      std::uint64_t idx = 0;
      for (unsigned v = 0; v < nv_; ++v) idx |= std::uint64_t{pre[v]} << v;
      return idx;
    }()));
  }
}

TEST_P(BddVsTruthTable, SupportMatchesDependence) {
  const std::vector<unsigned> support = mgr_->support_vars(f_);
  for (unsigned v = 0; v < nv_; ++v) {
    const bool in_support =
        std::find(support.begin(), support.end(), v) != support.end();
    EXPECT_EQ(in_support, f_tt_.depends_on(v)) << "var " << v;
    EXPECT_EQ(mgr_->depends_on(f_, v), f_tt_.depends_on(v)) << "var " << v;
  }
}

TEST_P(BddVsTruthTable, PairSupportIsUnion) {
  const std::vector<unsigned> pair_support = mgr_->support_vars(f_, g_);
  for (unsigned v = 0; v < nv_; ++v) {
    const bool expect = f_tt_.depends_on(v) || g_tt_.depends_on(v);
    const bool got =
        std::find(pair_support.begin(), pair_support.end(), v) != pair_support.end();
    EXPECT_EQ(got, expect) << "var " << v;
  }
}

// --- complement-edge trips ---------------------------------------------------
// With complement edges, negation is an O(1) bit flip and f / ~f share every
// node. Each operation must commute with random negation wrapping of its
// operands; the dense truth-table golden keeps the check exact.

TEST_P(BddVsTruthTable, DoubleNegationIsIdentityAndFree) {
  EXPECT_EQ(~~f_, f_);
  EXPECT_EQ(~~g_, g_);
  // O(1) negation: no new nodes, and both polarities share the whole DAG.
  const std::size_t live = mgr_->live_node_count();
  const Bdd nf = ~f_;
  EXPECT_EQ(mgr_->live_node_count(), live);
  EXPECT_EQ(nf.dag_size(), f_.dag_size());
}

TEST_P(BddVsTruthTable, ConnectivesUnderRandomNegationWrapping) {
  std::bernoulli_distribution coin(0.5);
  for (int trial = 0; trial < 8; ++trial) {
    const bool cf = coin(rng_), cg = coin(rng_), cout = coin(rng_);
    const Bdd wf = cf ? ~f_ : f_;
    const Bdd wg = cg ? ~g_ : g_;
    const TruthTable tf = cf ? ~f_tt_ : f_tt_;
    const TruthTable tg = cg ? ~g_tt_ : g_tt_;
    const auto wrap = [&](const Bdd& h) { return cout ? ~h : h; };
    const auto twrap = [&](const TruthTable& t) { return cout ? ~t : t; };
    EXPECT_EQ(round_trip(wrap(wf & wg)), twrap(tf & tg));
    EXPECT_EQ(round_trip(wrap(wf | wg)), twrap(tf | tg));
    EXPECT_EQ(round_trip(wrap(wf ^ wg)), twrap(tf ^ tg));
    EXPECT_EQ(round_trip(wrap(wf - wg)), twrap(tf - tg));
    EXPECT_EQ(round_trip(wrap(mgr_->apply_xnor(wf, wg))), twrap(~(tf ^ tg)));
    EXPECT_EQ(round_trip(wrap(mgr_->ite(wf, wg, ~wg))),
              twrap((tf & tg) | (~tf & ~tg)));
  }
}

TEST_P(BddVsTruthTable, QuantifiersUnderNegationWrapping) {
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < nv_; v += 2) vars.push_back(v);
  // De Morgan for quantifiers: ~exists(~f) = forall(f) and vice versa — the
  // kernel implements this as a complement-bit flip on the recursion.
  EXPECT_EQ(~mgr_->exists(~f_, vars), mgr_->forall(f_, vars));
  EXPECT_EQ(~mgr_->forall(~f_, vars), mgr_->exists(f_, vars));
  EXPECT_EQ(round_trip(mgr_->exists(~f_, vars)), (~f_tt_).exists(vars));
  EXPECT_EQ(round_trip(mgr_->forall(~f_, vars)), (~f_tt_).forall(vars));
  const Bdd cube = mgr_->make_cube(vars);
  EXPECT_EQ(mgr_->and_exists(~f_, ~g_, cube), mgr_->exists(~f_ & ~g_, cube));
  for (unsigned v = 0; v < nv_; ++v) {
    // The Boolean derivative is invariant under output negation.
    EXPECT_EQ(mgr_->derivative(~f_, v), mgr_->derivative(f_, v));
  }
}

TEST_P(BddVsTruthTable, StructuralOpsUnderNegationWrapping) {
  for (unsigned v = 0; v < nv_; ++v) {
    EXPECT_EQ(mgr_->cofactor(~f_, v, true), ~mgr_->cofactor(f_, v, true));
    EXPECT_EQ(mgr_->cofactor(~f_, v, false), ~mgr_->cofactor(f_, v, false));
  }
  CubeLits lits(nv_, -1);
  lits[0] = 0;
  if (nv_ > 3) lits[3] = 1;
  const Bdd cube = mgr_->make_cube(lits);
  EXPECT_EQ(mgr_->cofactor_cube(~f_, cube), ~mgr_->cofactor_cube(f_, cube));
  const unsigned v = nv_ / 2;
  EXPECT_EQ(mgr_->compose(~f_, v, g_), ~mgr_->compose(f_, v, g_));
  EXPECT_EQ(round_trip(mgr_->compose(f_, v, ~g_)),
            (~g_tt_ & f_tt_.cofactor(v, true)) | (g_tt_ & f_tt_.cofactor(v, false)));
  std::vector<Bdd> subst;
  for (unsigned u = 0; u < nv_; ++u) subst.push_back(~mgr_->var(u));
  // vector_compose with all-negated identity == permute-free input flip.
  const Bdd flipped = mgr_->vector_compose(~f_, subst);
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << nv_); ++m) {
    std::vector<bool> in(nv_);
    for (unsigned u = 0; u < nv_; ++u) in[u] = !((m >> u) & 1);
    EXPECT_EQ(mgr_->eval(flipped, in), !f_tt_.get(m));
  }
}

TEST_P(BddVsTruthTable, CountsAndSupportUnderNegation) {
  const double total = std::ldexp(1.0, static_cast<int>(nv_));
  EXPECT_DOUBLE_EQ(mgr_->sat_count(~f_), total - mgr_->sat_count(f_));
  EXPECT_EQ(mgr_->support_vars(~f_), mgr_->support_vars(f_));
  for (unsigned v = 0; v < nv_; ++v) {
    EXPECT_EQ(mgr_->depends_on(~f_, v), mgr_->depends_on(f_, v));
  }
  if (!f_.is_const()) {
    // A satisfying cube of ~f must evaluate f to false.
    const Bdd cube = mgr_->pick_one_cube(~f_);
    EXPECT_TRUE((cube & f_).is_false());
  }
}

TEST_P(BddVsTruthTable, ConstrainAndRestrictUnderNegation) {
  if (g_.is_const()) return;  // care set must be non-trivial
  // Both generalized cofactors are linear in their first argument:
  // op(~f, c) == ~op(f, c). They must also still agree with f on the care set.
  const Bdd c = g_;
  EXPECT_EQ(mgr_->constrain(~f_, c), ~mgr_->constrain(f_, c));
  EXPECT_EQ(mgr_->restrict_to(~f_, c), ~mgr_->restrict_to(f_, c));
  EXPECT_EQ(mgr_->constrain(~f_, c) & c, ~f_ & c);
  EXPECT_EQ(mgr_->restrict_to(~f_, c) & c, ~f_ & c);
}

INSTANTIATE_TEST_SUITE_P(Random, BddVsTruthTable,
                         ::testing::Values(RandomCase{3, 1}, RandomCase{4, 2},
                                           RandomCase{4, 3}, RandomCase{5, 4},
                                           RandomCase{5, 5}, RandomCase{6, 6},
                                           RandomCase{6, 7}, RandomCase{7, 8},
                                           RandomCase{8, 9}, RandomCase{8, 10}),
                         // `pinfo`, not `info`: the macro body has its own
                         // `info` that -Wshadow would flag.
                         [](const auto& pinfo) {
                           std::string s = "v";  // two statements per append:
                           s += std::to_string(pinfo.param.num_vars);
                           s += "_s";  // GCC 12's -Wrestrict misfires on the
                           s += std::to_string(pinfo.param.seed);  // operator+ chain
                           return s;
                         });

}  // namespace
}  // namespace bidec
