// Algebraic factoring: the netlist realizes exactly the cover function and
// balanced trees keep the depth logarithmic.
#include "baseline/factor.h"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

[[maybe_unused]] TruthTable cover_to_tt(const Cover& c) {
  return TruthTable::from_function(c.num_vars(),
                                   [&c](std::uint64_t m) { return c.eval(m); });
}

Cover random_cover(unsigned nv, unsigned cubes, std::mt19937_64& rng) {
  Cover c(nv);
  std::uniform_int_distribution<int> lit(-2, 1);  // bias toward '-'
  for (unsigned i = 0; i < cubes; ++i) {
    Cube cube(nv);
    for (unsigned v = 0; v < nv; ++v) {
      const int l = lit(rng);
      if (l >= 0) cube.set_literal(v, l == 1);
    }
    c.add(std::move(cube));
  }
  return c;
}

struct FactorFixture {
  Netlist net;
  std::vector<SignalId> inputs;

  explicit FactorFixture(unsigned nv) {
    for (unsigned v = 0; v < nv; ++v) inputs.push_back(net.add_input(numbered_name("x", v)));
  }
};

TEST(BalancedTree, DepthIsLogarithmic) {
  FactorFixture fx(8);
  const SignalId root = build_balanced_tree(fx.net, GateType::kAnd, fx.inputs);
  fx.net.add_output("y", root);
  const NetlistStats s = fx.net.stats();
  EXPECT_EQ(s.two_input, 7u);
  EXPECT_EQ(s.cascades, 3u);  // log2(8)
}

TEST(BalancedTree, EmptyGivesNeutralConstant) {
  FactorFixture fx(2);
  EXPECT_EQ(build_balanced_tree(fx.net, GateType::kAnd, {}),
            fx.net.get_const(true));
  EXPECT_EQ(build_balanced_tree(fx.net, GateType::kOr, {}),
            fx.net.get_const(false));
}

TEST(BalancedTree, SingleSignalPassesThrough) {
  FactorFixture fx(2);
  const SignalId sigs[] = {fx.inputs[1]};
  EXPECT_EQ(build_balanced_tree(fx.net, GateType::kOr, sigs), fx.inputs[1]);
}

TEST(Factor, EmptyAndUniversalCovers) {
  FactorFixture fx(3);
  EXPECT_EQ(factor_cover(fx.net, Cover(3), fx.inputs), fx.net.get_const(false));
  EXPECT_EQ(factor_cover(fx.net, Cover::universe(3), fx.inputs), fx.net.get_const(true));
}

TEST(Factor, SingleCube) {
  FactorFixture fx(3);
  const std::string rows[] = {"1-0"};
  const SignalId y = factor_cover(fx.net, Cover::from_strings(rows), fx.inputs);
  fx.net.add_output("y", y);
  EXPECT_TRUE(fx.net.evaluate({true, false, false})[0]);
  EXPECT_TRUE(fx.net.evaluate({true, true, false})[0]);
  EXPECT_FALSE(fx.net.evaluate({true, false, true})[0]);
}

TEST(Factor, SharedLiteralIsFactoredOut) {
  // F = a b + a c = a (b + c): 2 gates instead of 3.
  FactorFixture fx(3);
  const std::string rows[] = {"11-", "1-1"};
  const SignalId y = factor_cover(fx.net, Cover::from_strings(rows), fx.inputs);
  fx.net.add_output("y", y);
  EXPECT_EQ(fx.net.stats().two_input, 2u);
}

TEST(Factor, RandomCoversRealizeExactFunction) {
  std::mt19937_64 rng(61);
  for (int trial = 0; trial < 25; ++trial) {
    const unsigned nv = 3 + trial % 4;
    const Cover cover = random_cover(nv, 1 + trial % 7, rng);
    FactorFixture fx(nv);
    fx.net.add_output("y", factor_cover(fx.net, cover, fx.inputs));
    BddManager mgr(nv);
    const std::vector<Bdd> out = netlist_to_bdds(mgr, fx.net);
    EXPECT_EQ(out[0], cover.to_bdd(mgr)) << trial;
  }
}

TEST(Factor, NegativeLiteralsShareInverters) {
  FactorFixture fx(2);
  const std::string rows[] = {"0-", "-0"};  // ~a + ~b
  fx.net.add_output("y", factor_cover(fx.net, Cover::from_strings(rows), fx.inputs));
  // One inverter per input at most (strash shares them).
  EXPECT_LE(fx.net.stats().inverters, 2u);
}

}  // namespace
}  // namespace bidec
