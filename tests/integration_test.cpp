// Cross-module integration: the full PLA -> decompose -> BLIF -> verify
// pipeline, three-flow agreement on benchmarks, and the paper's headline
// structural claims on small instances.
#include <gtest/gtest.h>

#include "atpg/atpg.h"
#include "baseline/bds_like.h"
#include "baseline/sis_like.h"
#include "benchgen/benchgen.h"
#include "bidec/bidecomposer.h"
#include "io/blif.h"
#include "io/pla.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

Netlist decompose_benchmark(BddManager& mgr, const Benchmark& bench,
                            const BidecOptions& options = {}) {
  const std::vector<Isf> spec = bench.build(mgr);
  BiDecomposer dec(mgr, options, bench.input_names());
  const auto names = bench.output_names();
  for (std::size_t o = 0; o < spec.size(); ++o) dec.add_output(names[o], spec[o]);
  dec.finish();
  return std::move(dec.netlist());
}

TEST(Integration, PlaToBlifPipeline) {
  const char* pla_text = R"(.i 4
.o 2
.ilb a b c d
.ob f g
.type fd
1--1 10
-11- 11
0--0 -1
1010 0-
.e
)";
  const PlaFile pla = PlaFile::parse_string(pla_text);
  BddManager mgr(pla.num_inputs);
  const std::vector<Isf> spec = pla.to_isfs(mgr);

  std::vector<std::string> in_names, out_names;
  for (unsigned i = 0; i < pla.num_inputs; ++i) in_names.push_back(pla.input_name(i));
  for (unsigned o = 0; o < pla.num_outputs; ++o) out_names.push_back(pla.output_name(o));

  BiDecomposer dec(mgr, {}, in_names);
  for (std::size_t o = 0; o < spec.size(); ++o) dec.add_output(out_names[o], spec[o]);
  dec.finish();
  ASSERT_TRUE(verify_against_isfs(mgr, dec.netlist(), spec).ok);

  // Write BLIF, read it back, and verify the round trip against the spec.
  const std::string blif = write_blif(dec.netlist(), "pipeline");
  const Netlist reread = read_blif_string(blif);
  EXPECT_TRUE(verify_against_isfs(mgr, reread, spec).ok);
  EXPECT_TRUE(verify_equivalent(mgr, dec.netlist(), reread).ok);
}

TEST(Integration, ThreeFlowsAgreeOnRd84) {
  const Benchmark& bench = find_benchmark("rd84");
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);

  const Netlist ours = decompose_benchmark(mgr, bench);
  const Netlist sis = sis_like_synthesize(mgr, spec, bench.input_names(),
                                          bench.output_names());
  const Netlist bds = bds_like_synthesize(mgr, spec, bench.input_names(),
                                          bench.output_names());
  EXPECT_TRUE(verify_against_isfs(mgr, ours, spec).ok);
  EXPECT_TRUE(verify_against_isfs(mgr, sis, spec).ok);
  EXPECT_TRUE(verify_against_isfs(mgr, bds, spec).ok);
  // Spec is completely specified, so all three netlists are equivalent.
  EXPECT_TRUE(verify_equivalent(mgr, ours, sis).ok);
  EXPECT_TRUE(verify_equivalent(mgr, ours, bds).ok);
}

TEST(Integration, BiDecompBeatsSisLikeOnExorIntensive9sym) {
  // The Table 2 headline on the EXOR-intensive row: the bi-decomposition
  // netlist is shallower and faster with fewer gates, realized with EXOR
  // gates the two-level flow cannot produce. (Area is roughly tied on this
  // row: our strash-heavy baseline factors the symmetric SOP into the
  // optimal weight-counting DP network of cheap NAND/NOR gates, which real
  // SIS's mapper did not; see EXPERIMENTS.md.)
  const Benchmark& bench = find_benchmark("9sym");
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  const Netlist ours = decompose_benchmark(mgr, bench);
  const Netlist sis = sis_like_synthesize(mgr, spec, {}, {});
  EXPECT_LT(ours.stats().delay, sis.stats().delay);
  EXPECT_LT(ours.stats().cascades, sis.stats().cascades);
  EXPECT_LT(ours.stats().gates, sis.stats().gates);
  EXPECT_LE(ours.stats().area, sis.stats().area * 1.15);
  EXPECT_GT(ours.stats().exors, 0u);
  EXPECT_EQ(sis.stats().exors, 0u);
}

TEST(Integration, StrongBeatsWeakOnlyOnT481) {
  // The Table 3 conjecture: strong bi-decomposition produces smaller
  // netlists than a weak-only flow (the paper's model of BDS).
  const Benchmark& bench = find_benchmark("t481");
  BddManager mgr(bench.num_inputs);
  BidecOptions weak_only;
  weak_only.use_strong = false;
  const Netlist strong = decompose_benchmark(mgr, bench);
  const Netlist weak = decompose_benchmark(mgr, bench, weak_only);
  const std::vector<Isf> spec = bench.build(mgr);
  EXPECT_TRUE(verify_against_isfs(mgr, strong, spec).ok);
  EXPECT_TRUE(verify_against_isfs(mgr, weak, spec).ok);
  EXPECT_LT(strong.stats().area, weak.stats().area);
}

TEST(Integration, CacheReducesGateCountOnMultiOutput) {
  const Benchmark& bench = find_benchmark("rd84");
  BddManager mgr(bench.num_inputs);
  BidecOptions no_cache;
  no_cache.use_cache = false;
  const Netlist with_cache = decompose_benchmark(mgr, bench);
  const Netlist without_cache = decompose_benchmark(mgr, bench, no_cache);
  // Structural hashing still dedups identical gates, so the difference can
  // be small, but the cache must never hurt.
  EXPECT_LE(with_cache.stats().gates, without_cache.stats().gates);
}

TEST(Integration, DecomposedBenchmarkIsFullyTestable) {
  const Benchmark& bench = find_benchmark("rd84");
  BddManager mgr(bench.num_inputs);
  const Netlist net = decompose_benchmark(mgr, bench);
  const AtpgResult atpg = run_atpg(mgr, net);
  EXPECT_DOUBLE_EQ(atpg.coverage(), 1.0);
}

TEST(Integration, WeakOnlyStillVerifiesOnPlaBenchmark) {
  const Benchmark& bench = find_benchmark("misex2");
  BddManager mgr(bench.num_inputs);
  BidecOptions weak_only;
  weak_only.use_strong = false;
  const Netlist net = decompose_benchmark(mgr, bench, weak_only);
  const std::vector<Isf> spec = bench.build(mgr);
  EXPECT_TRUE(verify_against_isfs(mgr, net, spec).ok);
}

}  // namespace
}  // namespace bidec
