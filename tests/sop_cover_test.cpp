// Cover operations validated against the truth-table model.
#include "sop/cover.h"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.h"

namespace bidec {
namespace {

TruthTable cover_to_tt(const Cover& c) {
  return TruthTable::from_function(c.num_vars(),
                                   [&c](std::uint64_t m) { return c.eval(m); });
}

Cover random_cover(unsigned nv, unsigned cubes, std::mt19937_64& rng) {
  Cover c(nv);
  std::uniform_int_distribution<int> lit(-1, 1);
  for (unsigned i = 0; i < cubes; ++i) {
    Cube cube(nv);
    for (unsigned v = 0; v < nv; ++v) {
      const int l = lit(rng);
      if (l >= 0) cube.set_literal(v, l == 1);
    }
    c.add(std::move(cube));
  }
  return c;
}

TEST(Cover, EvalMatchesUnionOfCubes) {
  const std::string rows[] = {"1-0", "011"};
  const Cover c = Cover::from_strings(rows);
  const TruthTable t = cover_to_tt(c);
  EXPECT_EQ(t.count_ones(), 3u);  // 1-0 has two minterms, 011 one
}

TEST(Cover, TautologyVsTruthTable) {
  std::mt19937_64 rng(51);
  for (int trial = 0; trial < 50; ++trial) {
    const Cover c = random_cover(4, 1 + trial % 8, rng);
    EXPECT_EQ(c.is_tautology(), cover_to_tt(c).is_ones()) << trial;
  }
}

TEST(Cover, TautologyEdgeCases) {
  Cover empty(3);
  EXPECT_FALSE(empty.is_tautology());
  EXPECT_TRUE(Cover::universe(3).is_tautology());
  const std::string split[] = {"1--", "0--"};
  EXPECT_TRUE(Cover::from_strings(split).is_tautology());
}

TEST(Cover, ComplementVsTruthTable) {
  std::mt19937_64 rng(52);
  for (int trial = 0; trial < 50; ++trial) {
    const Cover c = random_cover(4, 1 + trial % 6, rng);
    EXPECT_EQ(cover_to_tt(c.complement()), ~cover_to_tt(c)) << trial;
  }
}

TEST(Cover, ComplementOfConstants) {
  EXPECT_TRUE(Cover(3).complement().is_tautology());
  EXPECT_TRUE(Cover::universe(3).complement().empty());
}

TEST(Cover, SharpCubeVsTruthTable) {
  std::mt19937_64 rng(53);
  for (int trial = 0; trial < 50; ++trial) {
    const Cover c = random_cover(4, 1 + trial % 5, rng);
    Cube cut(4);
    std::uniform_int_distribution<int> lit(-1, 1);
    for (unsigned v = 0; v < 4; ++v) {
      const int l = lit(rng);
      if (l >= 0) cut.set_literal(v, l == 1);
    }
    const TruthTable cut_tt = TruthTable::from_function(
        4, [&cut](std::uint64_t m) { return cut.contains_minterm(m); });
    EXPECT_EQ(cover_to_tt(c.sharp_cube(cut)), cover_to_tt(c) - cut_tt) << trial;
  }
}

TEST(Cover, CofactorVsTruthTable) {
  std::mt19937_64 rng(54);
  for (int trial = 0; trial < 30; ++trial) {
    const Cover c = random_cover(4, 3, rng);
    for (unsigned v = 0; v < 4; ++v) {
      EXPECT_EQ(cover_to_tt(c.cofactor(v, true)), cover_to_tt(c).cofactor(v, true));
      EXPECT_EQ(cover_to_tt(c.cofactor(v, false)), cover_to_tt(c).cofactor(v, false));
    }
  }
}

TEST(Cover, CoversCube) {
  const std::string rows[] = {"1--", "-1-"};
  const Cover c = Cover::from_strings(rows);
  EXPECT_TRUE(c.covers_cube(Cube::from_string("11-")));
  EXPECT_TRUE(c.covers_cube(Cube::from_string("1-0")));
  EXPECT_FALSE(c.covers_cube(Cube::from_string("--1")));
}

TEST(Cover, SingleCubeContainmentRemoval) {
  const std::string rows[] = {"1--", "11-", "110", "0-1"};
  Cover c = Cover::from_strings(rows);
  c.remove_single_cube_containment();
  EXPECT_EQ(c.size(), 2u);  // only "1--" and "0-1" survive
}

TEST(Cover, ContainmentRemovalKeepsOneOfIdenticalCubes) {
  const std::string rows[] = {"1-0", "1-0", "1-0"};
  Cover c = Cover::from_strings(rows);
  c.remove_single_cube_containment();
  EXPECT_EQ(c.size(), 1u);
}

TEST(Cover, MostBinateVariable) {
  // Variable 0 appears in both polarities twice; variable 1 once each.
  const std::string rows[] = {"10-", "01-", "1-1", "0-0"};
  const Cover c = Cover::from_strings(rows);
  EXPECT_EQ(c.most_binate_variable(), 0u);
  const std::string unate_rows[] = {"1--", "-1-"};
  EXPECT_EQ(Cover::from_strings(unate_rows).most_binate_variable(), 3u);  // == num_vars
}

TEST(Cover, FromBddRoundTrip) {
  BddManager mgr(4);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) ^ mgr.var(3));
  const Cover c = Cover::from_bdd(mgr, f, f);
  EXPECT_EQ(c.to_bdd(mgr), f);
}

TEST(Cover, LiteralCount) {
  const std::string rows[] = {"1-0", "011"};
  EXPECT_EQ(Cover::from_strings(rows).literal_count(), 5u);
}

}  // namespace
}  // namespace bidec
