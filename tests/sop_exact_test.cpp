// Exact minimization: prime generation and minimum covers on hand-checked
// functions, plus the quality yardstick for espresso-lite.
#include "sop/exact.h"

#include <gtest/gtest.h>

#include <random>

#include "sop/espresso_lite.h"

namespace bidec {
namespace {

TruthTable cover_to_tt(const Cover& c, unsigned nv) {
  return TruthTable::from_function(nv, [&c](std::uint64_t m) { return c.eval(m); });
}

Cover tt_to_minterm_cover(const TruthTable& t) {
  Cover c(t.num_vars());
  for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
    if (!t.get(m)) continue;
    Cube cube(t.num_vars());
    for (unsigned v = 0; v < t.num_vars(); ++v) cube.set_literal(v, (m >> v) & 1);
    c.add(std::move(cube));
  }
  return c;
}

TEST(Primes, SingleCubeFunction) {
  // f = x0 & ~x1 over 3 vars: exactly one prime.
  const TruthTable f = TruthTable::from_function(
      3, [](std::uint64_t m) { return (m & 1) && !(m & 2); });
  const std::vector<Cube> primes = prime_implicants(f, TruthTable::zeros(3));
  ASSERT_EQ(primes.size(), 1u);
  EXPECT_EQ(primes[0].to_string(), "10-");
}

TEST(Primes, XorHasAllMintermsAsPrimes) {
  const TruthTable f = TruthTable::from_function(
      2, [](std::uint64_t m) { return ((m & 1) != 0) != ((m & 2) != 0); });
  const std::vector<Cube> primes = prime_implicants(f, TruthTable::zeros(2));
  EXPECT_EQ(primes.size(), 2u);  // 10 and 01 cannot merge
}

TEST(Primes, ClassicTextbookExample) {
  // f = sum of minterms {0,1,2,5,6,7} over 3 vars (a classic QM exercise)
  // has primes: ~x1~x2(00-... in our bit order), etc. Check count and that
  // every prime is an implicant and maximal.
  TruthTable f(3);
  for (const unsigned m : {0u, 1u, 2u, 5u, 6u, 7u}) f.set(m, true);
  const std::vector<Cube> primes = prime_implicants(f, TruthTable::zeros(3));
  for (const Cube& p : primes) {
    // Implicant: all minterms inside f.
    for (std::uint64_t m = 0; m < 8; ++m) {
      if (p.contains_minterm(m)) {
        EXPECT_TRUE(f.get(m)) << p.to_string();
      }
    }
    // Maximal: dropping any literal leaves f.
    for (unsigned v = 0; v < 3; ++v) {
      if (p.literal(v) < 0) continue;
      Cube raised = p;
      raised.clear_literal(v);
      bool inside = true;
      for (std::uint64_t m = 0; m < 8; ++m) {
        if (raised.contains_minterm(m) && !f.get(m)) inside = false;
      }
      EXPECT_FALSE(inside) << p.to_string() << " is not maximal in " << v;
    }
  }
}

TEST(Exact, CoverEqualsFunction) {
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const unsigned nv = 4;
    const TruthTable on = TruthTable::random(nv, rng, 0.4);
    const Cover cover = exact_minimum_sop(on, TruthTable::zeros(nv));
    EXPECT_EQ(cover_to_tt(cover, nv), on) << trial;
  }
}

TEST(Exact, UsesDontCares) {
  // on = {11}, dc = {01, 10}: one cube suffices and may cover dc.
  TruthTable on(2), dc(2);
  on.set(3, true);
  dc.set(1, true);
  dc.set(2, true);
  const Cover cover = exact_minimum_sop(on, dc);
  ASSERT_EQ(cover.size(), 1u);
  // The cover must include the on-set and avoid the off-set (empty here
  // besides minterm 0).
  EXPECT_TRUE(cover.eval(3));
  EXPECT_FALSE(cover.eval(0));
}

TEST(Exact, KnownMinimumSizes) {
  // 2-of-3 majority needs exactly 3 cubes.
  const TruthTable maj = TruthTable::from_function(
      3, [](std::uint64_t m) { return __builtin_popcountll(m) >= 2; });
  EXPECT_EQ(exact_minimum_cube_count(maj, TruthTable::zeros(3)), 3u);
  // 3-input parity needs 4 minterm cubes.
  const TruthTable par = TruthTable::from_function(
      3, [](std::uint64_t m) { return __builtin_popcountll(m) % 2 == 1; });
  EXPECT_EQ(exact_minimum_cube_count(par, TruthTable::zeros(3)), 4u);
  // Constants.
  EXPECT_EQ(exact_minimum_cube_count(TruthTable::zeros(3), TruthTable::zeros(3)), 0u);
  EXPECT_EQ(exact_minimum_cube_count(TruthTable::ones(3), TruthTable::zeros(3)), 1u);
}

class EspressoQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EspressoQuality, WithinOneCubeOfExact) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 4 + GetParam() % 2;
  const TruthTable on = TruthTable::random(nv, rng, 0.35);
  const TruthTable dc = TruthTable::random(nv, rng, 0.15) - on;
  const std::size_t exact = exact_minimum_cube_count(on, dc);
  const EspressoResult res =
      espresso_lite(tt_to_minterm_cover(on), tt_to_minterm_cover(dc));
  EXPECT_GE(res.cover.size(), exact);  // exact really is a lower bound
  EXPECT_LE(res.cover.size(), exact + 2) << "espresso quality gap too large";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspressoQuality, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace bidec
