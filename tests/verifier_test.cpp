// The BDD-based verifier: collapse correctness, ISF compatibility checking
// and mutation detection.
#include "verify/verifier.h"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

TEST(Verifier, CollapseMatchesSimulation) {
  std::mt19937_64 rng(81);
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  net.add_output("y", net.add_gate(GateType::kNand, net.add_xor(a, b), c));
  net.add_output("z", net.add_gate(GateType::kNor, a, net.add_not(c)));
  BddManager mgr(3);
  const std::vector<Bdd> funcs = netlist_to_bdds(mgr, net);
  for (unsigned m = 0; m < 8; ++m) {
    const std::vector<bool> in{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const std::vector<bool> out = net.evaluate(in);
    EXPECT_EQ(mgr.eval(funcs[0], in), out[0]) << m;
    EXPECT_EQ(mgr.eval(funcs[1], in), out[1]) << m;
  }
}

TEST(Verifier, AcceptsCompatibleImplementation) {
  BddManager mgr(2);
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  net.add_output("y", net.add_or(a, b));
  // Spec requires 1 only on a&b, forbids only on ~a&~b: a|b is compatible.
  const std::vector<Isf> spec{Isf(mgr.var(0) & mgr.var(1), ~mgr.var(0) & ~mgr.var(1))};
  EXPECT_TRUE(verify_against_isfs(mgr, net, spec).ok);
}

TEST(Verifier, RejectsIncompatibleOutputAndReportsIndex) {
  BddManager mgr(2);
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  net.add_output("y0", net.add_and(a, b));
  net.add_output("y1", net.add_and(a, b));  // wrong for the second spec
  const std::vector<Isf> spec{Isf::from_csf(mgr.var(0) & mgr.var(1)),
                              Isf::from_csf(mgr.var(0) | mgr.var(1))};
  const VerifyResult res = verify_against_isfs(mgr, net, spec);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.first_failed_output, 1u);
}

TEST(Verifier, OutputCountMismatchThrows) {
  BddManager mgr(2);
  Netlist net;
  net.add_input("a");
  const std::vector<Isf> spec{Isf::from_csf(mgr.var(0))};
  EXPECT_THROW((void)verify_against_isfs(mgr, net, spec), std::invalid_argument);
}

TEST(Verifier, EquivalenceOfStructurallyDifferentNetlists) {
  Netlist n1;
  {
    const SignalId a = n1.add_input("a");
    const SignalId b = n1.add_input("b");
    n1.add_output("y", n1.add_not(n1.add_and(a, b)));  // ~(a&b)
  }
  Netlist n2;
  {
    const SignalId a = n2.add_input("a");
    const SignalId b = n2.add_input("b");
    n2.add_output("y", n2.add_or(n2.add_not(a), n2.add_not(b)));  // ~a | ~b
  }
  BddManager mgr(2);
  EXPECT_TRUE(verify_equivalent(mgr, n1, n2).ok);
}

TEST(Verifier, DetectsSingleGateMutation) {
  std::mt19937_64 rng(82);
  BddManager mgr(5);
  Netlist good;
  std::vector<SignalId> in;
  for (unsigned v = 0; v < 5; ++v) in.push_back(good.add_input(numbered_name("x", v)));
  const SignalId g1 = good.add_and(in[0], in[1]);
  const SignalId g2 = good.add_xor(g1, in[2]);
  const SignalId g3 = good.add_or(g2, good.add_and(in[3], in[4]));
  good.add_output("y", g3);

  Netlist bad;
  std::vector<SignalId> bin;
  for (unsigned v = 0; v < 5; ++v) bin.push_back(bad.add_input(numbered_name("x", v)));
  const SignalId h1 = bad.add_or(bin[0], bin[1]);  // mutated gate type
  const SignalId h2 = bad.add_xor(h1, bin[2]);
  const SignalId h3 = bad.add_or(h2, bad.add_and(bin[3], bin[4]));
  bad.add_output("y", h3);

  EXPECT_FALSE(verify_equivalent(mgr, good, bad).ok);
}

TEST(Verifier, InterfaceMismatchThrows) {
  Netlist n1;
  n1.add_input("a");
  Netlist n2;
  n2.add_input("a");
  n2.add_input("b");
  BddManager mgr(2);
  EXPECT_THROW((void)verify_equivalent(mgr, n1, n2), std::invalid_argument);
}

TEST(Verifier, ManagerTooSmallThrows) {
  Netlist net;
  net.add_input("a");
  net.add_input("b");
  BddManager mgr(1);
  EXPECT_THROW((void)netlist_to_bdds(mgr, net), std::invalid_argument);
}

}  // namespace
}  // namespace bidec
