// The SAT-backed decomposition engine must agree with the ground truth at
// every layer: the TT-domain checks against the brute-force component
// enumeration, the formula-level grouping oracle against the BDD Theorem-1
// checks, and the end-to-end netlists against both verifiers — at several
// tt_threshold settings so both the formula path and the TT path are
// exercised. Identical inputs must give identical netlists and stats.
#include "satdec/decomposer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "bidec/check.h"
#include "brute_force.h"
#include "io/blif.h"
#include "io/pla.h"
#include "isf/isf.h"
#include "satdec/grouping.h"
#include "satdec/sat_func.h"
#include "satdec/tt_isf.h"
#include "tt/truth_table.h"
#include "verify/sat_verifier.h"
#include "verify/verifier.h"

namespace bidec::satdec {
namespace {

namespace fs = std::filesystem;

std::string corpus(const char* name) {
#ifdef BIDEC_CORPUS_DIR
  return (fs::path(BIDEC_CORPUS_DIR) / name).string();
#else
  return (fs::path("tests/corpus") / name).string();
#endif
}

std::vector<unsigned> iota_vars(unsigned n) {
  std::vector<unsigned> v(n);
  for (unsigned i = 0; i < n; ++i) v[i] = i;
  return v;
}

TtIsf random_tt_isf(unsigned nv, std::mt19937_64& rng, double dc_density) {
  const TruthTable on = TruthTable::random(nv, rng, 0.5);
  const TruthTable dc = TruthTable::random(nv, rng, dc_density);
  return TtIsf{on - dc, (~on) - dc, iota_vars(nv)};
}

Isf to_bdd_isf(BddManager& mgr, const TtIsf& f) {
  return Isf(f.q.to_bdd(mgr), f.r.to_bdd(mgr));
}

// --- TT domain vs brute force / BDD ---------------------------------------

class TtChecksVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TtChecksVsBruteForce, OrAndAllSingletonPairs) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 4;
  BddManager mgr(nv);
  const TtIsf f = random_tt_isf(nv, rng, 0.25);
  const Isf isf = to_bdd_isf(mgr, f);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      EXPECT_EQ(tt_or_decomposable(f, xa, xb),
                testing::brute_force_decomposable(mgr, isf, nv, xa, xb,
                                                  testing::BruteGate::kOr))
          << "xa=" << a << " xb=" << b;
      EXPECT_EQ(tt_and_decomposable(f, xa, xb),
                testing::brute_force_decomposable(mgr, isf, nv, xa, xb,
                                                  testing::BruteGate::kAnd))
          << "xa=" << a << " xb=" << b;
    }
  }
}

TEST_P(TtChecksVsBruteForce, ExorMatchesBddCheck) {
  std::mt19937_64 rng(GetParam() + 5000);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const TtIsf f = random_tt_isf(nv, rng, 0.25);
  const Isf isf = to_bdd_isf(mgr, f);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = a + 1; b < nv; ++b) {
      const unsigned xa[] = {a}, xb[] = {b};
      const bool brute = testing::brute_force_decomposable(
          mgr, isf, nv, xa, xb, testing::BruteGate::kExor);
      EXPECT_EQ(tt_check_exor(f, xa, xb).has_value(), brute)
          << "xa=" << a << " xb=" << b;
      EXPECT_EQ(tt_exor_decomposable_11(f, a, b), brute)
          << "xa=" << a << " xb=" << b;
    }
  }
}

TEST_P(TtChecksVsBruteForce, ExorComponentsRecombine) {
  // When the Fig.-4 check succeeds, any cover of the component intervals
  // must XOR back into the original interval on its care set.
  std::mt19937_64 rng(GetParam() + 9000);
  const unsigned nv = 4;
  const TtIsf f = random_tt_isf(nv, rng, 0.4);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = a + 1; b < nv; ++b) {
      const unsigned xa[] = {a}, xb[] = {b};
      const auto comps = tt_check_exor(f, xa, xb);
      if (!comps) continue;
      // Interval sanity: on/off sets of each component are disjoint.
      EXPECT_TRUE((comps->a.q & comps->a.r).is_zero());
      EXPECT_TRUE((comps->b.q & comps->b.r).is_zero());
      // Take fa = q_a, fb = q_b (the minimum covers) and recombine.
      const TruthTable fx = comps->a.q ^ comps->b.q;
      EXPECT_TRUE((f.q - fx).is_zero()) << "a=" << a << " b=" << b;
      EXPECT_TRUE((f.r & fx).is_zero()) << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TtChecksVsBruteForce,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(TtIsfOps, DeriveOrComponentsSolveTheInterval) {
  // Theorem 3: for a decomposable grouping the derived components, covered
  // anywhere inside their intervals, OR back into the original interval.
  std::mt19937_64 rng(42);
  for (int round = 0; round < 20; ++round) {
    const unsigned nv = 5;
    const TtIsf f = random_tt_isf(nv, rng, 0.5);
    const unsigned xa[] = {0, 1}, xb[] = {2};
    if (!tt_or_decomposable(f, xa, xb)) continue;
    const TtIsf fa = tt_derive_or_a(f, xa, xb);
    EXPECT_TRUE((fa.q & fa.r).is_zero());
    const TruthTable cover_a = fa.q;  // minimum cover
    const TtIsf fb = tt_derive_or_b(f, cover_a, xa);
    EXPECT_TRUE((fb.q & fb.r).is_zero()) << "round " << round;
    const TruthTable fx = cover_a | fb.q;
    EXPECT_TRUE((f.q - fx).is_zero()) << "round " << round;
    EXPECT_TRUE((f.r & fx).is_zero()) << "round " << round;
  }
}

TEST(TtIsfOps, WeakGainMatchesDefinition) {
  std::mt19937_64 rng(7);
  const unsigned nv = 4;
  const TtIsf f = random_tt_isf(nv, rng, 0.3);
  const unsigned xa[] = {1};
  EXPECT_EQ(tt_weak_or_gain(f, xa), (f.q - f.r.exists(xa)).count_ones());
  const TtIsf wa = tt_derive_weak_or_a(f, xa);
  // Weak-A keeps the off-set and shrinks the on-set by exactly the gain.
  EXPECT_TRUE((wa.r ^ f.r).is_zero());
  EXPECT_EQ(f.q.count_ones() - wa.q.count_ones(), tt_weak_or_gain(f, xa));
}

// --- formula level: encoder and grouping oracle ---------------------------

TEST(SatFuncOracle, GroupingAgreesWithBddTheorem1) {
  std::mt19937_64 rng(11);
  const unsigned nv = 5;
  BddManager mgr(nv);
  for (int round = 0; round < 15; ++round) {
    const TtIsf f = random_tt_isf(nv, rng, 0.3);
    const Isf isf = to_bdd_isf(mgr, f);
    const FuncPtr q = f_tt(f.q, iota_vars(nv));
    const FuncPtr r = f_tt(f.r, iota_vars(nv));
    SatDecOptions bopt;
    SatDecStats bstats;
    Budget budget(bopt, bstats);
    const std::vector<unsigned> support = iota_vars(nv);
    TwoCopyOracle oracle(q, r, nv, support, budget);
    std::vector<unsigned> xa, xb;
    for (unsigned v = 0; v < nv; ++v) {
      switch (rng() % 3) {
        case 0: xa.push_back(v); break;
        case 1: xb.push_back(v); break;
        default: break;
      }
    }
    if (xa.empty() || xb.empty()) continue;
    EXPECT_EQ(oracle.decomposable(xa, xb), check_or_decomposable(isf, xa, xb))
        << "round " << round;
  }
}

TEST(SatFuncOracle, CoreHarvestedGroupingStaysDecomposable) {
  // Whatever harvest_core admits must still pass the explicit check — the
  // harvested selectors were absent from the final conflict, so the query
  // must remain UNSAT.
  std::mt19937_64 rng(23);
  const unsigned nv = 6;
  BddManager mgr(nv);
  for (int round = 0; round < 10; ++round) {
    const TtIsf f = random_tt_isf(nv, rng, 0.45);
    const Isf isf = to_bdd_isf(mgr, f);
    const FuncPtr q = f_tt(f.q, iota_vars(nv));
    const FuncPtr r = f_tt(f.r, iota_vars(nv));
    SatDecOptions bopt;
    SatDecStats bstats;
    Budget budget(bopt, bstats);
    const std::vector<unsigned> support = iota_vars(nv);
    TwoCopyOracle oracle(q, r, nv, support, budget);
    Grouping g{{0}, {1}};
    if (!oracle.decomposable(g.xa, g.xb)) continue;
    oracle.harvest_core(g, iota_vars(nv));
    EXPECT_TRUE(check_or_decomposable(isf, g.xa, g.xb))
        << "round " << round << " harvested a non-decomposable grouping";
  }
}

// --- end to end -----------------------------------------------------------

void expect_verified(const SatFlowResult& res, const PlaFile& pla) {
  const VerifyResult sat = sat_verify_against_pla(res.netlist, pla);
  EXPECT_TRUE(sat.ok);
  BddManager mgr(std::max(1u, pla.num_inputs));
  const std::vector<Isf> spec = pla.to_isfs(mgr);
  const VerifyResult bdd = verify_against_isfs(mgr, res.netlist, spec);
  EXPECT_TRUE(bdd.ok);
}

class SatdecCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(SatdecCorpus, DecomposesAndVerifiesAtSeveralThresholds) {
  const PlaFile pla = PlaFile::load(corpus(GetParam()));
  for (const unsigned threshold : {2u, 4u, 12u}) {
    SCOPED_TRACE(std::string(GetParam()) + " tt_threshold=" +
                 std::to_string(threshold));
    SatDecOptions opt;
    opt.tt_threshold = threshold;
    const SatFlowResult res = synthesize_satdec(pla, opt);
    expect_verified(res, pla);
    EXPECT_EQ(res.stats.solver.conflicts, res.stats.solver.conflicts);
  }
}

INSTANTIATE_TEST_SUITE_P(Pla, SatdecCorpus,
                         ::testing::Values("add2.pla", "maj3.pla", "mux21.pla",
                                           "xor4.pla", "dc_heavy.pla",
                                           "interval.pla", "xnor3.pla",
                                           "exor_shared.pla", "or3.pla",
                                           "fr_cover.pla", "f_type.pla"));

TEST(Satdec, DegenerateInputs) {
  // Tautology: every minterm is on.
  {
    const PlaFile pla = PlaFile::load(corpus("taut.pla"));
    const SatFlowResult res = synthesize_satdec(pla, SatDecOptions{});
    expect_verified(res, pla);
  }
  // Contradiction-free all-don't-care cover: any netlist is fine, but the
  // engine must terminate and verify.
  {
    const PlaFile pla = PlaFile::load(corpus("all_dc.pla"));
    const SatFlowResult res = synthesize_satdec(pla, SatDecOptions{});
    expect_verified(res, pla);
  }
  // Single variable / single inverter: terminal cases, no decomposition.
  for (const char* name : {"single_var.pla", "inv1.pla", "and2.pla"}) {
    const PlaFile pla = PlaFile::load(corpus(name));
    const SatFlowResult res = synthesize_satdec(pla, SatDecOptions{});
    expect_verified(res, pla);
  }
}

TEST(Satdec, InconsistentIntervalThrows) {
  // A minterm in both q and r: the interval is empty and add_output must
  // refuse instead of fabricating a netlist. (The PLA entry points can never
  // produce this — their covers are normalized with the on-minus-off rule —
  // so the guard is probed directly.)
  const unsigned nv = 2;
  TruthTable q = TruthTable::zeros(nv);
  q.set(3, true);
  TruthTable r = TruthTable::zeros(nv);
  r.set(3, true);
  r.set(0, true);
  SatDecomposer dec(nv, {"a", "b"}, SatDecOptions{});
  EXPECT_THROW(
      (void)dec.add_output("bad", f_tt(q, iota_vars(nv)), f_tt(r, iota_vars(nv))),
      std::runtime_error);
}

TEST(Satdec, NetlistSourceMatchesOriginal) {
  for (const char* name : {"chain.blif", "tree.blif", "notnot.blif"}) {
    SCOPED_TRACE(name);
    const Netlist src = load_blif(corpus(name));
    const SatFlowResult res = synthesize_satdec(src, SatDecOptions{});
    const VerifyResult eq = sat_verify_equivalent(res.netlist, src);
    EXPECT_TRUE(eq.ok);
  }
}

TEST(Satdec, DeterministicAcrossRuns) {
  const PlaFile pla = PlaFile::load(corpus("dc_heavy.pla"));
  SatDecOptions opt;
  opt.tt_threshold = 4;  // exercise both domains
  const SatFlowResult a = synthesize_satdec(pla, opt);
  const SatFlowResult b = synthesize_satdec(pla, opt);
  EXPECT_EQ(write_blif(a.netlist, "x"), write_blif(b.netlist, "x"));
  EXPECT_EQ(a.stats.solves, b.stats.solves);
  EXPECT_EQ(a.stats.grouping_queries, b.stats.grouping_queries);
  EXPECT_EQ(a.stats.enumerated_models, b.stats.enumerated_models);
  EXPECT_EQ(a.stats.solver.conflicts, b.stats.solver.conflicts);
  EXPECT_EQ(a.stats.solver.propagations, b.stats.solver.propagations);
}

TEST(Satdec, ConflictBudgetTripThrowsAbort) {
  const PlaFile pla = PlaFile::load(corpus("gc_spike.pla"));
  SatDecOptions opt;
  opt.total_conflict_budget = 1;  // starve the engine immediately
  bool aborted = false;
  try {
    (void)synthesize_satdec(pla, opt);
  } catch (const SatDecAbortError&) {
    aborted = true;
  } catch (const std::exception&) {
    // A budget of 1 may legitimately finish trivial covers; only the abort
    // type matters when it does trip.
  }
  if (aborted) SUCCEED();
}

TEST(Satdec, StatsCountBothDomains) {
  const PlaFile pla = PlaFile::load(corpus("xor4.pla"));
  SatDecOptions opt;
  opt.tt_threshold = 2;
  const SatFlowResult res = synthesize_satdec(pla, opt);
  EXPECT_GT(res.stats.formula_calls + res.stats.tt_calls, 0u);
  EXPECT_GT(res.stats.solves, 0u);
  opt.tt_threshold = 12;
  const SatFlowResult tt = synthesize_satdec(pla, opt);
  EXPECT_GT(tt.stats.materializations, 0u);
  EXPECT_GT(tt.stats.enumerated_models, 0u);
}

}  // namespace
}  // namespace bidec::satdec
