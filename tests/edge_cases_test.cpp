// Edge-case and robustness pack: degenerate specifications, parser fuzzing
// (malformed input must throw, never crash), GC pressure during long
// operation sequences, and regression cases found during development.
#include <gtest/gtest.h>

#include <random>

#include "bidec/flow.h"
#include "io/blif.h"
#include "io/pla.h"
#include "mv/mv_isf.h"
#include "tt/truth_table.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

// --- degenerate specifications ----------------------------------------------

TEST(EdgeCases, FullyUnspecifiedFunction) {
  BddManager mgr(4);
  const Isf anything(mgr.bdd_false(), mgr.bdd_false());
  BiDecomposer dec(mgr);
  const auto [f, sig] = dec.decompose(anything);
  // Cheapest cover of "anything" is a constant.
  EXPECT_TRUE(f.is_false() || f.is_true());
  dec.netlist().add_output("f", sig);
  EXPECT_EQ(dec.netlist().stats().gates, 0u);
}

TEST(EdgeCases, SingleMintermOnSet) {
  BddManager mgr(6);
  const Bdd q = mgr.make_cube(CubeLits{1, 0, 1, 0, 1, 0});
  const Isf isf(q, ~q);
  BiDecomposer dec(mgr);
  const auto [f, sig] = dec.decompose(isf);
  EXPECT_EQ(f, q);
  dec.netlist().add_output("f", sig);
  // A 6-literal product: 5 AND-class gates + inverters.
  EXPECT_LE(dec.netlist().stats().two_input, 5u);
}

TEST(EdgeCases, AllOutputsIdentical) {
  std::mt19937_64 rng(1);
  BddManager mgr(5);
  const Bdd f = TruthTable::random(5, rng).to_bdd(mgr);
  std::vector<Isf> spec(6, Isf::from_csf(f));
  BiDecomposer dec(mgr);
  for (int o = 0; o < 6; ++o) dec.add_output(numbered_name("f", o), spec[o]);
  // The cache collapses outputs 2..6 to the first cone.
  EXPECT_GE(dec.stats().cache_hits, 5u);
  EXPECT_TRUE(verify_against_isfs(mgr, dec.netlist(), spec).ok);
}

TEST(EdgeCases, ComplementaryOutputsShareViaInverter) {
  std::mt19937_64 rng(2);
  BddManager mgr(5);
  const Bdd f = TruthTable::random(5, rng).to_bdd(mgr);
  std::vector<Isf> spec{Isf::from_csf(f), Isf::from_csf(~f)};
  BiDecomposer dec(mgr);
  dec.add_output("f", spec[0]);
  const std::size_t before = dec.netlist().stats().two_input;
  dec.add_output("g", spec[1]);
  EXPECT_EQ(dec.netlist().stats().two_input, before);  // only an inverter added
  EXPECT_GE(dec.stats().cache_complement_hits, 1u);
  EXPECT_TRUE(verify_against_isfs(mgr, dec.netlist(), spec).ok);
}

TEST(EdgeCases, OneVariableManager) {
  BddManager mgr(1);
  BiDecomposer dec(mgr);
  const auto [f, sig] = dec.decompose(Isf::from_csf(mgr.var(0)));
  EXPECT_EQ(f, mgr.var(0));
  const auto [g, sig2] = dec.decompose(Isf::from_csf(~mgr.var(0)));
  EXPECT_EQ(g, ~mgr.var(0));
}

TEST(EdgeCases, WideManagerSparseSupport) {
  // 40 variables, function touches only three of them.
  BddManager mgr(40);
  const Bdd f = (mgr.var(7) & mgr.var(23)) ^ mgr.var(39);
  const std::vector<Isf> spec{Isf::from_csf(f)};
  const FlowResult res = synthesize_bidecomp(mgr, spec, {}, {});
  EXPECT_TRUE(verify_against_isfs(mgr, res.netlist, spec).ok);
  EXPECT_LE(res.netlist.stats().two_input, 2u);
}

// --- parser fuzzing -----------------------------------------------------------

TEST(ParserFuzz, PlaGarbageNeverCrashes) {
  std::mt19937_64 rng(3);
  const std::string alphabet = ".io01-~ e\npft\t x2";
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> len(0, 200);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) text += alphabet[pick(rng)];
    try {
      const PlaFile pla = PlaFile::parse_string(text);
      // Accepted input must be internally consistent.
      for (const auto& row : pla.rows) {
        EXPECT_EQ(row.inputs.size(), pla.num_inputs);
        EXPECT_EQ(row.outputs.size(), pla.num_outputs);
      }
    } catch (const std::exception&) {
      // throwing is the expected failure mode
    }
  }
}

TEST(ParserFuzz, BlifGarbageNeverCrashes) {
  std::mt19937_64 rng(4);
  const std::string alphabet = ".namesinputsoutputsmodel 01-\nab\t";
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> len(0, 200);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) text += alphabet[pick(rng)];
    try {
      (void)read_blif_string(text);
    } catch (const std::exception&) {
    }
  }
}

TEST(ParserFuzz, MutatedValidPlaStaysSane) {
  const std::string valid = ".i 3\n.o 2\n1-0 10\n01- 11\n111 0-\n.e\n";
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::size_t> pos(0, valid.size() - 1);
  std::uniform_int_distribution<int> ch(32, 126);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = valid;
    text[pos(rng)] = static_cast<char>(ch(rng));
    try {
      const PlaFile pla = PlaFile::parse_string(text);
      BddManager mgr(pla.num_inputs > 0 ? pla.num_inputs : 1);
      if (pla.num_inputs > 0 && pla.num_inputs <= 8) {
        (void)pla.to_isfs(mgr);  // semantic layer must also hold up
      }
    } catch (const std::exception&) {
    }
  }
}

// --- GC pressure --------------------------------------------------------------

TEST(GcPressure, LongOperationSequenceStaysCorrect) {
  BddManager mgr(10, /*initial_capacity=*/1u << 12);
  mgr.set_gc_threshold(2000);  // force frequent collections
  std::mt19937_64 rng(6);
  Bdd acc = mgr.bdd_false();
  TruthTable acc_tt(10);
  for (int step = 0; step < 60; ++step) {
    const TruthTable t = TruthTable::random(10, rng, 0.3);
    const Bdd f = t.to_bdd(mgr);
    switch (step % 3) {
      case 0: acc = acc | f; acc_tt = acc_tt | t; break;
      case 1: acc = acc ^ f; acc_tt = acc_tt ^ t; break;
      case 2: acc = acc & ~f; acc_tt = acc_tt & ~t; break;
    }
  }
  EXPECT_GE(mgr.stats().gc_runs, 1u);
  EXPECT_EQ(TruthTable::from_bdd(mgr, acc, 10), acc_tt);
}

TEST(GcPressure, DecomposerUnderTightThreshold) {
  BddManager mgr(8, 1u << 12);
  mgr.set_gc_threshold(3000);
  std::mt19937_64 rng(7);
  const TruthTable on = TruthTable::random(8, rng, 0.5);
  const Isf isf = Isf::from_csf(on.to_bdd(mgr));
  BiDecomposer dec(mgr);
  const auto [f, sig] = dec.decompose(isf);
  EXPECT_TRUE(isf.is_compatible(f));
}

// --- regressions ---------------------------------------------------------------

TEST(Regression, XorOfNotFanninsInNativeMode) {
  // add_gate_native must not strip inverters (the mapper relies on it).
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId na = net.add_not(a);
  const SignalId x = net.add_gate_native(GateType::kXor, na, b);
  EXPECT_EQ(net.node(x).type, GateType::kXor);  // not folded into XNOR
  // Non-native mode does strip.
  const SignalId y = net.add_xor(na, b);
  EXPECT_EQ(net.node(y).type, GateType::kNot);
}

TEST(Regression, SupportOfCompletelySpecifiedMvFunction) {
  // MvIsf::support must not evaluate support(Q|R) (a tautology for CSFs).
  BddManager mgr(3);
  std::vector<Bdd> sets{~mgr.var(0), mgr.var(0) & ~mgr.var(2), mgr.var(0) & mgr.var(2)};
  const auto f = MvIsf::from_value_sets(mgr, sets);
  EXPECT_EQ(f.support(), (std::vector<unsigned>{0, 2}));
}

TEST(Regression, AbsorbInvertersTwiceIsIdempotent) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  net.add_output("y", net.add_not(net.add_and(a, b)));
  EXPECT_EQ(net.absorb_inverters(), 1u);
  EXPECT_EQ(net.absorb_inverters(), 0u);
  EXPECT_FALSE(net.evaluate({true, true})[0]);
}

}  // namespace
}  // namespace bidec
