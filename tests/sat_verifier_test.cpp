// Cross-engine verification: the SAT miter verifier and the BDD verifier
// must return identical verdicts — pass and fail alike — on random
// netlist/spec pairs, on synthesized benchmark netlists, and on deliberate
// mutations. Per-output failure lists must agree too.
#include "verify/sat_verifier.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "benchgen/benchgen.h"
#include "bidec/flow.h"
#include "io/pla.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

// Random netlist over `inputs` inputs with `outputs` outputs.
Netlist random_netlist(std::mt19937_64& rng, unsigned inputs, unsigned outputs) {
  Netlist net;
  std::vector<SignalId> pool;
  for (unsigned i = 0; i < inputs; ++i) {
    pool.push_back(net.add_input(numbered_name("i", i)));
  }
  const GateType types[] = {GateType::kNot, GateType::kAnd,  GateType::kOr,
                            GateType::kXor, GateType::kNand, GateType::kNor,
                            GateType::kXnor};
  for (int g = 0; g < 10; ++g) {
    const GateType t = types[rng() % std::size(types)];
    const SignalId a = pool[rng() % pool.size()];
    const SignalId b = pool[rng() % pool.size()];
    pool.push_back(gate_arity(t) == 1 ? net.add_gate(t, a) : net.add_gate(t, a, b));
  }
  for (unsigned o = 0; o < outputs; ++o) {
    net.add_output(numbered_name("o", o), pool[pool.size() - 1 - (o % pool.size())]);
  }
  return net;
}

// Random PLA text over `inputs`/`outputs` with the given .type.
PlaFile random_pla(std::mt19937_64& rng, unsigned inputs, unsigned outputs,
                   const char* type) {
  std::string text = ".i " + std::to_string(inputs) + "\n.o " +
                     std::to_string(outputs) + "\n.type " + type + "\n";
  const unsigned rows = 3 + rng() % 4;
  for (unsigned r = 0; r < rows; ++r) {
    std::string in, out;
    for (unsigned i = 0; i < inputs; ++i) in += "01-"[rng() % 3];
    for (unsigned o = 0; o < outputs; ++o) out += "01-"[rng() % 3];
    text += in + " " + out + "\n";
  }
  text += ".e\n";
  return PlaFile::parse_string(text);
}

// The heart of the cross-engine contract: on *arbitrary* netlist/PLA pairs
// (most of which fail verification), both engines return the same verdict
// and flag the same outputs, for every PLA .type semantics.
TEST(SatVerifier, VerdictsMatchBddVerifierOnRandomPairs) {
  std::mt19937_64 rng(31);
  const char* types[] = {"f", "fd", "fr"};
  for (int round = 0; round < 60; ++round) {
    const unsigned inputs = 3 + rng() % 3;   // 3..5
    const unsigned outputs = 1 + rng() % 3;  // 1..3
    const PlaFile pla = random_pla(rng, inputs, outputs, types[round % 3]);
    const Netlist net = random_netlist(rng, inputs, outputs);

    BddManager mgr(inputs);
    const std::vector<Isf> spec = pla.to_isfs(mgr);
    const VerifyResult bdd = verify_against_isfs(mgr, net, spec);
    const VerifyResult sat_pla = sat_verify_against_pla(net, pla);
    const VerifyResult sat_isf = sat_verify_against_isfs(net, spec);

    ASSERT_EQ(bdd.ok, sat_pla.ok) << "round " << round << " type " << types[round % 3];
    ASSERT_EQ(bdd.ok, sat_isf.ok) << "round " << round;
    ASSERT_EQ(bdd.failed_outputs, sat_pla.failed_outputs) << "round " << round;
    ASSERT_EQ(bdd.failed_outputs, sat_isf.failed_outputs) << "round " << round;
    if (!bdd.ok) {
      ASSERT_EQ(bdd.first_failed_output, sat_pla.first_failed_output);
    }
  }
}

TEST(SatVerifier, SynthesizedBenchmarksPassBothEngines) {
  // Small/medium members of the paper suites; every synthesized netlist
  // must satisfy Q <= f <= ~R under both engines, and PLA-backed specs are
  // additionally checked straight against their cover rows (no BDDs at all
  // on that path).
  for (const char* name : {"9sym", "rd84", "5xp1", "misex2", "t481"}) {
    const Benchmark& b = find_benchmark(name);
    BddManager mgr(b.num_inputs);
    const std::vector<Isf> spec = b.build(mgr);
    const FlowResult flow =
        synthesize_bidecomp(mgr, spec, b.input_names(), b.output_names());

    const VerifyResult bdd = verify_against_isfs(mgr, flow.netlist, spec);
    const VerifyResult sat = sat_verify_against_isfs(flow.netlist, spec);
    EXPECT_TRUE(bdd.ok) << name;
    EXPECT_TRUE(sat.ok) << name;
    if (b.pla) {
      const VerifyResult sat_pla = sat_verify_against_pla(flow.netlist, *b.pla);
      EXPECT_TRUE(sat_pla.ok) << name << " (cover rows)";
    }
  }
}

TEST(SatVerifier, MutationIsRejectedByBothEngines) {
  // Synthesize a benchmark, then mutate the netlist output (invert it);
  // both engines must reject, flagging the same output.
  const Benchmark& b = find_benchmark("rd84");
  BddManager mgr(b.num_inputs);
  const std::vector<Isf> spec = b.build(mgr);
  FlowResult flow = synthesize_bidecomp(mgr, spec, b.input_names(), b.output_names());

  Netlist mutated;
  for (std::size_t i = 0; i < flow.netlist.num_inputs(); ++i) {
    mutated.add_input(flow.netlist.input_name(i));
  }
  // Rebuild, then invert output 1.
  {
    std::vector<SignalId> map(flow.netlist.num_nodes(), kNoSignal);
    for (std::size_t i = 0; i < flow.netlist.num_inputs(); ++i) {
      map[flow.netlist.inputs()[i]] = mutated.inputs()[i];
    }
    for (const SignalId id : flow.netlist.reachable_topo_order()) {
      const Netlist::Node& n = flow.netlist.node(id);
      if (n.type == GateType::kInput) continue;
      if (n.type == GateType::kConst0) { map[id] = mutated.get_const(false); continue; }
      if (n.type == GateType::kConst1) { map[id] = mutated.get_const(true); continue; }
      map[id] = gate_arity(n.type) == 1
                    ? mutated.add_gate(n.type, map[n.fanin0])
                    : mutated.add_gate(n.type, map[n.fanin0], map[n.fanin1]);
    }
    for (std::size_t o = 0; o < flow.netlist.num_outputs(); ++o) {
      SignalId s = map[flow.netlist.output_signal(o)];
      if (o == 1) s = mutated.add_not(s);
      mutated.add_output(flow.netlist.output_name(o), s);
    }
  }

  const VerifyResult bdd = verify_against_isfs(mgr, mutated, spec);
  const VerifyResult sat = sat_verify_against_isfs(mutated, spec);
  ASSERT_FALSE(bdd.ok);
  ASSERT_FALSE(sat.ok);
  EXPECT_EQ(bdd.failed_outputs, sat.failed_outputs);
  EXPECT_EQ(sat.failed_outputs, (std::vector<std::size_t>{1}));
}

TEST(SatVerifier, EquivalenceMiters) {
  // (x & y) | z == (x | z) & (y | z); flipping one gate breaks it.
  Netlist a;
  {
    const SignalId x = a.add_input("x"), y = a.add_input("y"), z = a.add_input("z");
    a.add_output("f", a.add_or(a.add_and(x, y), z));
  }
  Netlist b;
  {
    const SignalId x = b.add_input("x"), y = b.add_input("y"), z = b.add_input("z");
    b.add_output("f", b.add_and(b.add_or(x, z), b.add_or(y, z)));
  }
  EXPECT_TRUE(sat_verify_equivalent(a, b).ok);

  Netlist c;
  {
    const SignalId x = c.add_input("x"), y = c.add_input("y"), z = c.add_input("z");
    c.add_output("f", c.add_and(c.add_or(x, z), c.add_xor(y, z)));
  }
  const VerifyResult bad = sat_verify_equivalent(a, c);
  ASSERT_FALSE(bad.ok);
  EXPECT_EQ(bad.failed_outputs, (std::vector<std::size_t>{0}));

  BddManager mgr(3);
  EXPECT_TRUE(verify_equivalent(mgr, a, b).ok);
  EXPECT_FALSE(verify_equivalent(mgr, a, c).ok);
}

TEST(SatVerifier, EveryFailingOutputIsListed) {
  // Spec demands f0 = x, f1 = y; the netlist swaps them, so both outputs
  // fail under both engines.
  Netlist net;
  const SignalId x = net.add_input("x");
  const SignalId y = net.add_input("y");
  net.add_output("f0", y);
  net.add_output("f1", x);
  BddManager mgr(2);
  const std::vector<Isf> spec{Isf::from_csf(mgr.var(0)), Isf::from_csf(mgr.var(1))};
  const VerifyResult bdd = verify_against_isfs(mgr, net, spec);
  const VerifyResult sat = sat_verify_against_isfs(net, spec);
  const std::vector<std::size_t> both{0, 1};
  EXPECT_EQ(bdd.failed_outputs, both);
  EXPECT_EQ(sat.failed_outputs, both);
  EXPECT_EQ(bdd.first_failed_output, 0u);
  EXPECT_EQ(sat.first_failed_output, 0u);
}

TEST(SatVerifier, InterfaceMismatchThrows) {
  Netlist a;
  a.add_output("f", a.add_input("x"));
  Netlist b;
  const SignalId x = b.add_input("x");
  const SignalId y = b.add_input("y");
  b.add_output("f", b.add_and(x, y));
  EXPECT_THROW((void)sat_verify_equivalent(a, b), std::invalid_argument);

  BddManager mgr(1);
  const std::vector<Isf> spec{Isf::from_csf(mgr.var(0)),
                              Isf::from_csf(~mgr.var(0))};
  EXPECT_THROW((void)sat_verify_against_isfs(a, spec), std::invalid_argument);
}

TEST(SatVerifier, VerifyWithEnginesDispatch) {
  Netlist net;
  net.add_output("f", net.add_input("x"));
  BddManager mgr(1);
  const std::vector<Isf> spec{Isf::from_csf(mgr.var(0))};

  const DualVerifyResult none = verify_with_engines(VerifyEngine::kNone, mgr, net, spec);
  EXPECT_FALSE(none.bdd_ran);
  EXPECT_FALSE(none.sat_ran);
  EXPECT_TRUE(none.ok());
  EXPECT_TRUE(none.agree());

  const DualVerifyResult bdd = verify_with_engines(VerifyEngine::kBdd, mgr, net, spec);
  EXPECT_TRUE(bdd.bdd_ran);
  EXPECT_FALSE(bdd.sat_ran);
  EXPECT_TRUE(bdd.ok());

  const DualVerifyResult both = verify_with_engines(VerifyEngine::kBoth, mgr, net, spec);
  EXPECT_TRUE(both.bdd_ran);
  EXPECT_TRUE(both.sat_ran);
  EXPECT_TRUE(both.ok());
  EXPECT_TRUE(both.agree());
}

TEST(SatVerifier, EngineNamesRoundTrip) {
  for (const VerifyEngine e : {VerifyEngine::kNone, VerifyEngine::kBdd,
                               VerifyEngine::kSat, VerifyEngine::kBoth}) {
    const auto parsed = parse_verify_engine(to_string(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, e);
  }
  EXPECT_FALSE(parse_verify_engine("simulation").has_value());
  EXPECT_FALSE(parse_verify_engine("").has_value());
}

}  // namespace
}  // namespace bidec
