// Task-parallel kernel (DESIGN.md §16): a multi-threaded manager must
// produce the *same canonical NodeIds* as the serial kernel — canonicity is
// owned by the unique table, so serial and parallel runs inside one manager
// land on identical edges. These tests run the same workload both ways in a
// single manager and compare ids, audit the structures, and exercise the
// region/GC interaction and abort propagation.
#include "bdd/bdd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace bidec {
namespace {

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// Deterministic random functions: each is an XOR of a few random cubes, so
/// the suite is reproducible and the BDDs are dense enough to spawn tasks.
std::vector<Bdd> random_funcs(BddManager& m, unsigned nvars, int count,
                              std::uint64_t seed) {
  std::vector<Bdd> fs;
  fs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Bdd f = m.bdd_false();
    for (int c = 0; c < 6; ++c) {
      Bdd cube = m.bdd_true();
      for (unsigned v = 0; v < nvars; ++v) {
        const std::uint64_t r = xorshift(seed) % 3;
        if (r == 0) cube &= m.var(v);
        if (r == 1) cube &= m.nvar(v);
      }
      f ^= cube;
    }
    fs.push_back(f);
  }
  return fs;
}

TEST(BddParallel, SerialAndParallelAgreeOnNodeIds) {
  BddManager mgr(12);
  const std::vector<Bdd> fs = random_funcs(mgr, 12, 8, 0x9e3779b9ull);

  // Serial pass: record the canonical edge of every result.
  std::vector<NodeId> expect;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    for (std::size_t j = i + 1; j < fs.size(); ++j) {
      expect.push_back((fs[i] & fs[j]).id());
      expect.push_back((fs[i] | fs[j]).id());
      expect.push_back((fs[i] ^ fs[j]).id());
      expect.push_back((fs[i] - fs[j]).id());
      expect.push_back(mgr.ite(fs[i], fs[j], fs[(i + j) % fs.size()]).id());
    }
  }

  // Parallel pass in the same manager: identical ids, not just equivalence.
  mgr.set_threads(8);
  mgr.set_parallel_grain(1);  // no serial trial: every op must open a region
  ASSERT_EQ(mgr.threads(), 8u);
  std::size_t k = 0;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    for (std::size_t j = i + 1; j < fs.size(); ++j) {
      EXPECT_EQ((fs[i] & fs[j]).id(), expect[k++]);
      EXPECT_EQ((fs[i] | fs[j]).id(), expect[k++]);
      EXPECT_EQ((fs[i] ^ fs[j]).id(), expect[k++]);
      EXPECT_EQ((fs[i] - fs[j]).id(), expect[k++]);
      EXPECT_EQ(mgr.ite(fs[i], fs[j], fs[(i + j) % fs.size()]).id(),
                expect[k++]);
    }
  }
  EXPECT_GT(mgr.stats().par_ops, 0u);

  // And the structures survived the concurrent inserts.
  EXPECT_TRUE(mgr.audit().empty());
}

TEST(BddParallel, MiterOfSerialAndParallelResultsIsFalse) {
  BddManager mgr(10);
  const std::vector<Bdd> fs = random_funcs(mgr, 10, 6, 0xabcdef12345ull);
  std::vector<Bdd> serial;
  for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
    serial.push_back(fs[i] & fs[i + 1]);
    serial.push_back(mgr.ite(fs[i], fs[i + 1], ~fs[i]));
  }
  mgr.set_threads(4);
  mgr.set_parallel_grain(1);
  std::size_t k = 0;
  for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
    EXPECT_TRUE((serial[k++] ^ (fs[i] & fs[i + 1])).is_false());
    EXPECT_TRUE((serial[k++] ^ mgr.ite(fs[i], fs[i + 1], ~fs[i])).is_false());
  }
}

TEST(BddParallel, ComposeAndQuantifiersMatchAcrossThreadCounts) {
  BddManager mgr(12);
  const std::vector<Bdd> fs = random_funcs(mgr, 12, 4, 0x5bd1e995ull);
  std::vector<NodeId> expect;
  for (const Bdd& f : fs) {
    expect.push_back(mgr.compose(f, 3, fs[0] ^ fs[1]).id());
    expect.push_back(mgr.exists(f, mgr.make_cube({1u, 4u, 7u})).id());
    expect.push_back(mgr.forall(f, mgr.make_cube({0u, 5u})).id());
  }
  mgr.set_threads(8);
  mgr.set_parallel_grain(1);
  std::size_t k = 0;
  for (const Bdd& f : fs) {
    EXPECT_EQ(mgr.compose(f, 3, fs[0] ^ fs[1]).id(), expect[k++]);
    EXPECT_EQ(mgr.exists(f, mgr.make_cube({1u, 4u, 7u})).id(), expect[k++]);
    EXPECT_EQ(mgr.forall(f, mgr.make_cube({0u, 5u})).id(), expect[k++]);
  }
  EXPECT_TRUE(mgr.audit().empty());
}

TEST(BddParallel, SerialRunKeepsAllParallelCountersZero) {
  // The stable-JSON report gates its "parallel" block on these counters;
  // a default (threads=1) manager must never tick any of them.
  BddManager mgr(10);
  const std::vector<Bdd> fs = random_funcs(mgr, 10, 6, 0x2545f491ull);
  Bdd acc = mgr.bdd_true();
  for (const Bdd& f : fs) acc = mgr.ite(f, acc, ~acc) ^ (acc & f);
  (void)mgr.exists(acc, mgr.make_cube({2u, 3u}));
  const BddStats& s = mgr.stats();
  EXPECT_EQ(mgr.threads(), 1u);
  EXPECT_EQ(s.par_ops, 0u);
  EXPECT_EQ(s.par_tasks, 0u);
  EXPECT_EQ(s.par_steals, 0u);
  EXPECT_EQ(s.par_cache_drops, 0u);
  EXPECT_EQ(s.par_cas_retries, 0u);
}

TEST(BddParallel, CountersPopulateAndThreadsRevertToSerial) {
  BddManager mgr(12);
  const std::vector<Bdd> fs = random_funcs(mgr, 12, 6, 0x6c62272e07ull);
  mgr.set_threads(4);
  mgr.set_parallel_grain(1);
  Bdd acc = mgr.bdd_false();
  for (std::size_t i = 0; i + 1 < fs.size(); ++i) acc |= fs[i] & fs[i + 1];
  const BddStats after_par = mgr.stats();
  EXPECT_GT(after_par.par_ops, 0u);
  EXPECT_GT(after_par.par_tasks, 0u);

  // Dropping back to one thread restores the pure serial path: the parallel
  // counters freeze while the op counters keep moving.
  mgr.set_threads(1);
  EXPECT_EQ(mgr.threads(), 1u);
  (void)(acc & fs[0]);
  EXPECT_EQ(mgr.stats().par_ops, after_par.par_ops);
  EXPECT_EQ(mgr.stats().par_tasks, after_par.par_tasks);
}

TEST(BddParallel, MidRegionGrowthAndGcLoseNoNodes) {
  // Small initial capacity so the region arena starts tight and the
  // stop-the-world growth safepoint actually fires, then a GC after the
  // region must account for every allocated slot (spares included).
  BddManager mgr(14, /*initial_capacity=*/1u << 8);
  const std::vector<Bdd> fs = random_funcs(mgr, 14, 10, 0x853c49e6748full);
  mgr.set_threads(4);
  mgr.set_parallel_grain(1);
  Bdd acc = mgr.bdd_false();
  for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
    acc ^= mgr.ite(fs[i], fs[i + 1], acc);
  }
  ASSERT_FALSE(acc.is_const());
  EXPECT_TRUE(mgr.audit().empty());

  const Bdd snapshot = acc;
  mgr.collect_garbage();
  EXPECT_TRUE(mgr.audit().empty());
  EXPECT_EQ(acc, snapshot);

  // Node indices are stable across GC: recomputing serially after the
  // collection must land on the very same edges.
  mgr.set_threads(1);
  Bdd acc2 = mgr.bdd_false();
  for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
    acc2 ^= mgr.ite(fs[i], fs[i + 1], acc2);
  }
  EXPECT_EQ(acc2.id(), acc.id());
}

TEST(BddParallel, StepBudgetAbortsParallelRegion) {
  BddManager mgr(12);
  const std::vector<Bdd> fs = random_funcs(mgr, 12, 6, 0x94d049bb1331ull);
  mgr.set_threads(4);
  mgr.set_parallel_grain(1);
  mgr.set_step_budget(64);
  EXPECT_THROW(
      {
        Bdd acc = mgr.bdd_false();
        for (std::size_t i = 0; i + 1 < fs.size(); ++i) acc ^= fs[i] & fs[i + 1];
      },
      BddAbortError);
  // The manager stays fully usable after the abort.
  mgr.clear_abort();
  EXPECT_TRUE(mgr.audit().empty());
  EXPECT_FALSE((fs[0] ^ fs[1]).is_const());
}

TEST(BddParallel, DeadlineAbortsParallelRegion) {
  BddManager mgr(12);
  const std::vector<Bdd> fs = random_funcs(mgr, 12, 6, 0xd6e8feb86659ull);
  mgr.set_threads(4);
  mgr.set_parallel_grain(1);
  mgr.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  EXPECT_THROW(
      {
        Bdd acc = mgr.bdd_false();
        for (std::size_t i = 0; i + 1 < fs.size(); ++i) acc ^= fs[i] & fs[i + 1];
      },
      BddAbortError);
  mgr.clear_abort();
  EXPECT_TRUE(mgr.audit().empty());
  EXPECT_FALSE((fs[0] ^ fs[1]).is_const());
}

TEST(BddParallel, AdaptiveGrainKeepsSmallOpsSerial) {
  // Default grain (0 = adaptive): an operation only escalates to a region
  // when it blows a step cap scaled to the store size, so the small ops
  // that dominate synthesis flows never pay region setup/teardown.
  BddManager mgr(10);
  const std::vector<Bdd> fs = random_funcs(mgr, 10, 4, 0xe7037ed1a0b428ull);
  std::vector<NodeId> expect;
  for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
    expect.push_back((fs[i] & fs[i + 1]).id());
  }
  mgr.set_threads(8);
  std::size_t k = 0;
  for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
    EXPECT_EQ((fs[i] & fs[i + 1]).id(), expect[k++]);
  }
  // Everything fit under the trial cap: no region was ever opened.
  EXPECT_EQ(mgr.stats().par_ops, 0u);
  EXPECT_TRUE(mgr.audit().empty());
}

TEST(BddParallel, RegionCacheInvalidatedByGcAfterResetStats) {
  // Regression: the cross-region cache used to stamp stats_.gc_runs, which
  // reset_stats() zeroes — on a pooled manager a post-reset collection
  // could land the counter back on the stamped value, stale entries then
  // survived a real GC and handed out freed node ids (a batch-suite
  // segfault). The stamp is now a monotonic epoch reset never touches.
  BddManager mgr(12);
  const std::vector<Bdd> fs = random_funcs(mgr, 12, 6, 0xa0761d6478bd64ull);
  mgr.collect_garbage();  // gc_runs = 1 at the first region's entry
  mgr.set_threads(2);
  mgr.set_parallel_grain(1);
  {
    // Region results are cached in the concurrent cache, then dropped so
    // the collection below frees their nodes.
    Bdd scratch = mgr.bdd_false();
    for (std::size_t i = 0; i + 1 < fs.size(); ++i) scratch ^= fs[i] & fs[i + 1];
    ASSERT_FALSE(scratch.is_const());
  }
  mgr.reset_stats();      // gc_runs: 1 -> 0, like the batch engine between jobs
  mgr.collect_garbage();  // gc_runs back to 1 == the stamped value; epoch moved on
  // Recompute every pair through the (possibly stale) region cache first —
  // set_threads would rebuild ParallelState and mask the bug if interleaved.
  std::vector<NodeId> par_ids;
  for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
    par_ids.push_back((fs[i] & fs[i + 1]).id());
  }
  EXPECT_TRUE(mgr.audit().empty());
  mgr.set_threads(1);
  std::size_t k = 0;
  for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
    EXPECT_EQ((fs[i] & fs[i + 1]).id(), par_ids[k++]);
  }
}

TEST(BddParallel, ThreadsZeroMeansAuto) {
  BddManager mgr(4);
  mgr.set_threads(0);
  EXPECT_GE(mgr.threads(), 1u);
  const Bdd f = mgr.var(0) & mgr.var(1);
  EXPECT_EQ(f, mgr.var(0) & mgr.var(1));
}

}  // namespace
}  // namespace bidec
