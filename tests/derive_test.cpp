// Theorems 3/4 and the weak variants: derived component ISFs are proper
// intervals, respect the variable sets, and composing ANY compatible cover
// of A with the B derived from it yields a function compatible with F.
#include "bidec/derive.h"

#include <gtest/gtest.h>

#include <random>

#include "bidec/check.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

Isf random_isf(BddManager& mgr, unsigned nv, std::mt19937_64& rng, double dc_density) {
  const TruthTable on = TruthTable::random(nv, rng, 0.5);
  const TruthTable dc = TruthTable::random(nv, rng, dc_density);
  return Isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
}

class DeriveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeriveProperty, StrongOrComposition) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 5;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.35);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      if (!check_or_decomposable(isf, xa, xb)) continue;

      const Isf fa_isf = derive_or_component_a(isf, xa, xb);
      // A is independent of X_B.
      EXPECT_FALSE(mgr.depends_on(fa_isf.q(), b));
      EXPECT_FALSE(mgr.depends_on(fa_isf.r(), b));

      const Bdd fa = fa_isf.any_cover();
      const Isf fb_isf = derive_or_component_b(isf, fa, xa);
      EXPECT_FALSE(mgr.depends_on(fb_isf.q(), a));
      EXPECT_FALSE(mgr.depends_on(fb_isf.r(), a));

      const Bdd fb = fb_isf.any_cover();
      EXPECT_TRUE(isf.is_compatible(fa | fb)) << "xa=" << a << " xb=" << b;
    }
  }
}

TEST_P(DeriveProperty, StrongAndComposition) {
  std::mt19937_64 rng(GetParam() + 111);
  const unsigned nv = 5;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.35);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      if (!check_and_decomposable(isf, xa, xb)) continue;
      const Isf fa_isf = derive_and_component_a(isf, xa, xb);
      EXPECT_FALSE(mgr.depends_on(fa_isf.q(), b));
      const Bdd fa = fa_isf.any_cover();
      const Isf fb_isf = derive_and_component_b(isf, fa, xa);
      EXPECT_FALSE(mgr.depends_on(fb_isf.q(), a));
      const Bdd fb = fb_isf.any_cover();
      EXPECT_TRUE(isf.is_compatible(fa & fb)) << "xa=" << a << " xb=" << b;
    }
  }
}

TEST_P(DeriveProperty, StrongOrWithEveryCompatibleCoverOfA) {
  // Theorem 4 must work for EVERY fa in the interval of A, not just the
  // canonical one; enumerate covers on a small case.
  std::mt19937_64 rng(GetParam() + 222);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.4);
  const unsigned xa[] = {0}, xb[] = {1};
  if (!check_or_decomposable(isf, xa, xb)) return;
  const Isf fa_isf = derive_or_component_a(isf, xa, xb);
  // Enumerate compatible fa: iterate over all functions of vars {0,2,3}.
  for (std::uint32_t bits = 0; bits < 256; ++bits) {
    TruthTable fa_tt(nv);
    for (unsigned m = 0; m < 16; ++m) {
      const unsigned idx = (m & 1) | ((m >> 1) & 0x6);  // vars 0,2,3 packed
      if ((bits >> idx) & 1) fa_tt.set(m, true);
    }
    const Bdd fa = fa_tt.to_bdd(mgr);
    if (!fa_isf.is_compatible(fa)) continue;
    const Isf fb_isf = derive_or_component_b(isf, fa, xa);
    const Bdd fb = fb_isf.any_cover();
    ASSERT_TRUE(isf.is_compatible(fa | fb)) << "fa bits " << bits;
  }
}

TEST_P(DeriveProperty, WeakOrComposition) {
  std::mt19937_64 rng(GetParam() + 333);
  const unsigned nv = 5;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.3);
  for (unsigned v = 0; v < nv; ++v) {
    const unsigned xa[] = {v};
    const Isf fa_isf = derive_weak_or_component_a(isf, xa);
    // A gains don't-cares: its on-set shrinks, never grows.
    EXPECT_TRUE(fa_isf.q().implies(isf.q()));
    EXPECT_EQ(fa_isf.r(), isf.r());
    if (check_weak_or_useful(isf, xa)) {
      EXPECT_NE(fa_isf.q(), isf.q());  // strict gain
    }
    const Bdd fa = fa_isf.any_cover();
    const Isf fb_isf = derive_weak_or_component_b(isf, fa, xa);
    EXPECT_FALSE(mgr.depends_on(fb_isf.q(), v));
    EXPECT_FALSE(mgr.depends_on(fb_isf.r(), v));
    const Bdd fb = fb_isf.any_cover();
    EXPECT_TRUE(isf.is_compatible(fa | fb)) << "v=" << v;
  }
}

TEST_P(DeriveProperty, WeakAndComposition) {
  std::mt19937_64 rng(GetParam() + 444);
  const unsigned nv = 5;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.3);
  for (unsigned v = 0; v < nv; ++v) {
    const unsigned xa[] = {v};
    const Isf fa_isf = derive_weak_and_component_a(isf, xa);
    EXPECT_TRUE(fa_isf.r().implies(isf.r()));
    EXPECT_EQ(fa_isf.q(), isf.q());
    const Bdd fa = fa_isf.any_cover();
    const Isf fb_isf = derive_weak_and_component_b(isf, fa, xa);
    EXPECT_FALSE(mgr.depends_on(fb_isf.q(), v));
    const Bdd fb = fb_isf.any_cover();
    EXPECT_TRUE(isf.is_compatible(fa & fb)) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeriveProperty, ::testing::Range<std::uint64_t>(0, 12));

TEST(Derive, PaperFig3Example) {
  // F = (a | b) | (c | d) decomposed with XA={c,d}, XB={a,b} (Fig. 3 left).
  BddManager mgr(4);
  const Bdd expected = mgr.var(0) | mgr.var(1) | mgr.var(2) | mgr.var(3);
  const Isf isf = Isf::from_csf(expected);
  const unsigned xa[] = {2, 3}, xb[] = {0, 1};
  ASSERT_TRUE(check_or_decomposable(isf, xa, xb));
  const Isf fa_isf = derive_or_component_a(isf, xa, xb);
  const Bdd fa = fa_isf.any_cover();
  EXPECT_EQ(fa, mgr.var(2) | mgr.var(3));
  const Isf fb_isf = derive_or_component_b(isf, fa, xa);
  const Bdd fb = fb_isf.any_cover();
  EXPECT_EQ(fa | fb, expected);
}

TEST(Derive, ComponentIntervalsAreConsistentByConstruction) {
  // Isf's constructor throws when Q & R != 0; derivation must never produce
  // an inconsistent interval for a decomposable grouping.
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    BddManager mgr(5);
    const Isf isf = random_isf(mgr, 5, rng, 0.3);
    const unsigned xa[] = {static_cast<unsigned>(trial % 5)},
                   xb[] = {static_cast<unsigned>((trial + 2) % 5)};
    if (!check_or_decomposable(isf, xa, xb)) continue;
    EXPECT_NO_THROW({
      const Isf fa_isf = derive_or_component_a(isf, xa, xb);
      const Isf fb_isf = derive_or_component_b(isf, fa_isf.any_cover(), xa);
    });
  }
}

}  // namespace
}  // namespace bidec
