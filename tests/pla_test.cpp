// Espresso PLA parsing, serialization and ISF semantics of the f/fd/fr
// output types.
#include "io/pla.h"

#include <gtest/gtest.h>

namespace bidec {
namespace {

constexpr const char* kSmallPla = R"(# a 2-input 2-output example
.i 3
.o 2
.ilb a b c
.ob f g
.type fd
.p 4
1-0 10
01- 11
111 0-
000 01
.e
)";

TEST(Pla, ParseBasics) {
  const PlaFile pla = PlaFile::parse_string(kSmallPla);
  EXPECT_EQ(pla.num_inputs, 3u);
  EXPECT_EQ(pla.num_outputs, 2u);
  EXPECT_EQ(pla.type, PlaFile::Type::kFD);
  ASSERT_EQ(pla.rows.size(), 4u);
  EXPECT_EQ(pla.rows[0].inputs, "1-0");
  EXPECT_EQ(pla.rows[0].outputs, "10");
  EXPECT_EQ(pla.input_name(0), "a");
  EXPECT_EQ(pla.output_name(1), "g");
}

TEST(Pla, DefaultNamesWhenUnnamed) {
  const PlaFile pla = PlaFile::parse_string(".i 2\n.o 1\n11 1\n.e\n");
  EXPECT_EQ(pla.input_name(1), "in1");
  EXPECT_EQ(pla.output_name(0), "out0");
}

TEST(Pla, WriteParseRoundTrip) {
  const PlaFile pla = PlaFile::parse_string(kSmallPla);
  const PlaFile again = PlaFile::parse_string(pla.write());
  EXPECT_EQ(again.num_inputs, pla.num_inputs);
  EXPECT_EQ(again.num_outputs, pla.num_outputs);
  EXPECT_EQ(again.type, pla.type);
  ASSERT_EQ(again.rows.size(), pla.rows.size());
  for (std::size_t i = 0; i < pla.rows.size(); ++i) {
    EXPECT_EQ(again.rows[i].inputs, pla.rows[i].inputs);
    EXPECT_EQ(again.rows[i].outputs, pla.rows[i].outputs);
  }
  EXPECT_EQ(again.input_names, pla.input_names);
}

TEST(Pla, JoinedCubeFormatAccepted) {
  // Some writers omit the space between planes.
  const PlaFile pla = PlaFile::parse_string(".i 2\n.o 1\n111\n001\n.e\n");
  ASSERT_EQ(pla.rows.size(), 2u);
  EXPECT_EQ(pla.rows[0].inputs, "11");
  EXPECT_EQ(pla.rows[0].outputs, "1");
}

TEST(Pla, TildeIsOffAlias) {
  const PlaFile pla = PlaFile::parse_string(".i 1\n.o 2\n1 1~\n.e\n");
  EXPECT_EQ(pla.rows[0].outputs, "10");
}

TEST(Pla, MalformedInputsRejected) {
  EXPECT_THROW((void)PlaFile::parse_string("11 1\n"), std::runtime_error);
  EXPECT_THROW((void)PlaFile::parse_string(".i 2\n.o 1\n1 1\n"), std::runtime_error);
  EXPECT_THROW((void)PlaFile::parse_string(".i 2\n.o 1\n2- 1\n"), std::runtime_error);
  EXPECT_THROW((void)PlaFile::parse_string(".i 2\n.o 1\n-- x\n"), std::runtime_error);
  EXPECT_THROW((void)PlaFile::parse_string(".i 2\n.o 1\n.type xx\n"), std::runtime_error);
  EXPECT_THROW((void)PlaFile::load("/nonexistent/file.pla"), std::runtime_error);
}

TEST(Pla, FdSemantics) {
  BddManager mgr(3);
  const PlaFile pla = PlaFile::parse_string(kSmallPla);
  const std::vector<Isf> isfs = pla.to_isfs(mgr);
  ASSERT_EQ(isfs.size(), 2u);
  const Bdd a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  // Output f: on = a~c + ~a b; no don't-cares ('0' marks nothing in fd).
  EXPECT_EQ(isfs[0].q(), (a & ~c) | (~a & b));
  EXPECT_TRUE(isfs[0].dc().is_false());
  // Output g: on = ~a b + ~a~b~c; dc = abc (the '-' in row three).
  EXPECT_EQ(isfs[1].q(), (~a & b) | (~a & ~b & ~c));
  EXPECT_EQ(isfs[1].dc(), a & b & c);
}

TEST(Pla, FSemanticsHasNoDontCares) {
  BddManager mgr(2);
  const PlaFile pla = PlaFile::parse_string(".i 2\n.o 1\n.type f\n11 1\n00 -\n.e\n");
  const std::vector<Isf> isfs = pla.to_isfs(mgr);
  // '-' in a type-f file does not mark don't-cares.
  EXPECT_TRUE(isfs[0].is_csf());
  EXPECT_EQ(isfs[0].q(), mgr.var(0) & mgr.var(1));
}

TEST(Pla, FrSemantics) {
  BddManager mgr(2);
  const PlaFile pla =
      PlaFile::parse_string(".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n");
  const std::vector<Isf> isfs = pla.to_isfs(mgr);
  EXPECT_EQ(isfs[0].q(), mgr.var(0) & mgr.var(1));
  EXPECT_EQ(isfs[0].r(), ~mgr.var(0) & ~mgr.var(1));
  // Everything else is don't-care.
  EXPECT_EQ(isfs[0].dc(), mgr.var(0) ^ mgr.var(1));
}

TEST(Pla, OnSetAndDcSetAccessors) {
  BddManager mgr(3);
  const PlaFile pla = PlaFile::parse_string(kSmallPla);
  const Bdd a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  EXPECT_EQ(pla.on_set(mgr, 0), (a & ~c) | (~a & b));
  EXPECT_TRUE(pla.dc_set(mgr, 0).is_false());
  EXPECT_EQ(pla.dc_set(mgr, 1), a & b & c);
}

TEST(Pla, SaveLoadRoundTrip) {
  const PlaFile pla = PlaFile::parse_string(kSmallPla);
  const std::string path = ::testing::TempDir() + "/roundtrip.pla";
  pla.save(path);
  const PlaFile again = PlaFile::load(path);
  EXPECT_EQ(again.rows.size(), pla.rows.size());
}

}  // namespace
}  // namespace bidec
