// Variable-ordering utilities: cross-manager transfer, order evaluation,
// FORCE and sifting heuristics on order-sensitive functions.
#include "bdd/bdd_reorder.h"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "tt/truth_table.h"

namespace bidec {
namespace {

/// The classic order-sensitive function: x0&x1 | x2&x3 | ... built over an
/// INTERLEAVED variable numbering, so the identity order is bad and the
/// paired order is linear.
Bdd interleaved_and_or(BddManager& mgr, unsigned pairs) {
  // Pair i couples variable i with variable pairs + i.
  Bdd f = mgr.bdd_false();
  for (unsigned i = 0; i < pairs; ++i) f |= mgr.var(i) & mgr.var(pairs + i);
  return f;
}

TEST(BddTransfer, IdentityPreservesFunction) {
  std::mt19937_64 rng(7);
  BddManager src(6), dst(6);
  const TruthTable t = TruthTable::random(6, rng);
  const Bdd f = t.to_bdd(src);
  const Bdd g = bdd_transfer(dst, f);
  EXPECT_EQ(TruthTable::from_bdd(dst, g, 6), t);
  EXPECT_EQ(g.manager(), &dst);
}

TEST(BddTransfer, RenamesVariables) {
  BddManager src(3), dst(5);
  const Bdd f = src.var(0) & ~src.var(2);
  const unsigned var_map[] = {4, 1, 0};
  const Bdd g = bdd_transfer(dst, f, var_map);
  EXPECT_EQ(g, dst.var(4) & ~dst.var(0));
}

TEST(BddTransfer, RejectsShortMap) {
  BddManager src(3), dst(3);
  const Bdd f = src.var(0);
  const unsigned var_map[] = {0, 1};
  EXPECT_THROW((void)bdd_transfer(dst, f, var_map), std::invalid_argument);
}

TEST(BddTransfer, SharedNodesStayShared) {
  BddManager src(6), dst(6);
  const Bdd shared = src.var(2) & src.var(3);
  const Bdd f = (src.var(0) & shared) | (src.var(1) & shared);
  const Bdd g = bdd_transfer(dst, f);
  EXPECT_EQ(g.dag_size(), f.dag_size());
}

TEST(OrderEval, PairedOrderBeatsInterleaved) {
  const unsigned pairs = 5;
  BddManager mgr(2 * pairs);
  const Bdd f = interleaved_and_or(mgr, pairs);
  const Bdd fs[] = {f};

  std::vector<unsigned> identity(2 * pairs);
  std::iota(identity.begin(), identity.end(), 0u);
  std::vector<unsigned> paired;
  for (unsigned i = 0; i < pairs; ++i) {
    paired.push_back(i);
    paired.push_back(pairs + i);
  }
  const std::size_t bad = size_under_order(mgr, fs, identity);
  const std::size_t good = size_under_order(mgr, fs, paired);
  EXPECT_LT(good, bad);
  EXPECT_EQ(good, 2 * pairs + 1u);  // linear-size BDD: 2p internal nodes + 1 terminal
}

TEST(OrderEval, InvertOrderRoundTrip) {
  const std::vector<unsigned> order{3, 1, 0, 2};
  const std::vector<unsigned> inv = invert_order(order);
  EXPECT_EQ(inv, (std::vector<unsigned>{2, 1, 3, 0}));
  for (unsigned level = 0; level < order.size(); ++level) {
    EXPECT_EQ(inv[order[level]], level);
  }
}

TEST(ForceOrder, ImprovesInterleavedAndOr) {
  const unsigned pairs = 6;
  BddManager mgr(2 * pairs);
  const Bdd f = interleaved_and_or(mgr, pairs);
  const Bdd fs[] = {f};
  std::vector<unsigned> identity(2 * pairs);
  std::iota(identity.begin(), identity.end(), 0u);
  const std::vector<unsigned> order = force_order(mgr, fs);
  EXPECT_LE(size_under_order(mgr, fs, order), size_under_order(mgr, fs, identity));
  // Must be a permutation.
  std::vector<unsigned> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, identity);
}

TEST(SiftOrder, FindsLinearOrderForAndOr) {
  const unsigned pairs = 4;
  BddManager mgr(2 * pairs);
  const Bdd f = interleaved_and_or(mgr, pairs);
  const Bdd fs[] = {f};
  const std::vector<unsigned> order = sift_order(mgr, fs, /*rounds=*/2);
  // The optimum for this function is 3n/2 + ... ~ linear; sifting must get
  // within a factor of the paired order.
  std::vector<unsigned> paired;
  for (unsigned i = 0; i < pairs; ++i) {
    paired.push_back(i);
    paired.push_back(pairs + i);
  }
  EXPECT_LE(size_under_order(mgr, fs, order),
            size_under_order(mgr, fs, paired) + 2);
}

TEST(SiftOrder, NeverWorseThanIdentity) {
  std::mt19937_64 rng(17);
  BddManager mgr(7);
  const TruthTable t = TruthTable::random(7, rng, 0.3);
  const Bdd f = t.to_bdd(mgr);
  const Bdd fs[] = {f};
  std::vector<unsigned> identity(7);
  std::iota(identity.begin(), identity.end(), 0u);
  const std::vector<unsigned> order = sift_order(mgr, fs);
  EXPECT_LE(size_under_order(mgr, fs, order), size_under_order(mgr, fs, identity));
}

TEST(ForceOrder, EmptyAndConstantInputs) {
  BddManager mgr(4);
  const std::vector<Bdd> none;
  EXPECT_EQ(force_order(mgr, none).size(), 4u);
  const Bdd fs[] = {mgr.bdd_true()};
  EXPECT_EQ(force_order(mgr, fs).size(), 4u);
}

}  // namespace
}  // namespace bidec
