// Tests for the structural netlist linter: every rule fires on a
// hand-crafted broken netlist with the exact rule id, and clean designs —
// hand-written, synthesized by the flow, and fuzz round-trip outputs —
// produce zero findings.
#include <gtest/gtest.h>

#include <string>

#include "benchgen/benchgen.h"
#include "bidec/flow.h"
#include "io/blif.h"
#include "lint/netlist_lint.h"

namespace bidec {
namespace {

LintReport lint_string(const std::string& blif, NetlistLintOptions options = {}) {
  return lint_netlist(RawNetlist::parse_blif_string(blif), options);
}

// --- per-rule broken netlists ----------------------------------------------

TEST(NetlistLint, CombinationalLoopFires101) {
  const LintReport rep = lint_string(
      ".inputs a\n"
      ".outputs f\n"
      ".names u v\n1 1\n"
      ".names v u\n1 1\n"
      ".names a v f\n11 1\n");
  EXPECT_EQ(rep.count_rule(kRuleLoop), 1u);
  EXPECT_GE(rep.errors(), 1u);
}

TEST(NetlistLint, SelfLoopFires101) {
  const LintReport rep = lint_string(
      ".inputs a\n"
      ".outputs f\n"
      ".names a f f\n11 1\n");
  EXPECT_EQ(rep.count_rule(kRuleLoop), 1u);
}

TEST(NetlistLint, UndrivenNetFires102) {
  const LintReport rep = lint_string(
      ".inputs a\n"
      ".outputs f\n"
      ".names a ghost f\n11 1\n");
  ASSERT_EQ(rep.count_rule(kRuleUndriven), 1u);
  EXPECT_EQ(rep.findings()[0].object, "ghost");
}

TEST(NetlistLint, UndrivenOutputFires102) {
  const LintReport rep = lint_string(
      ".inputs a\n"
      ".outputs f g\n"
      ".names a f\n1 1\n");
  EXPECT_EQ(rep.count_rule(kRuleUndriven), 1u);
}

TEST(NetlistLint, MultiplyDrivenNetFires103) {
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n11 1\n"
      ".names a b f\n1- 1\n-1 1\n");
  EXPECT_EQ(rep.count_rule(kRuleMultiDriven), 1u);
}

TEST(NetlistLint, DrivenPrimaryInputFires110) {
  // One gate driving a PI: not a gate-vs-gate conflict (NL103 stays quiet),
  // but the gate shadows the environment's value — NL110.
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f\n"
      ".names b a\n1 1\n"
      ".names a f\n1 1\n");
  EXPECT_EQ(rep.count_rule(kRulePiRedefined), 1u);
  EXPECT_EQ(rep.count_rule(kRuleMultiDriven), 0u);
  EXPECT_GE(rep.errors(), 1u);
}

TEST(NetlistLint, RedeclaredPrimaryInputFires110) {
  // Duplicate .inputs declaration: no driver in sight, so it used to slip
  // past NL102 (a declaration counts as a driver) and NL103 (only one).
  const LintReport rep = lint_string(
      ".inputs a b a\n"
      ".outputs f\n"
      ".names a b f\n11 1\n");
  EXPECT_EQ(rep.count_rule(kRulePiRedefined), 1u);
  EXPECT_EQ(rep.count_rule(kRuleUndriven), 0u);
  EXPECT_EQ(rep.count_rule(kRuleMultiDriven), 0u);
}

TEST(NetlistLint, MultiplyDrivenPrimaryInputFires110And103) {
  // Two gates fighting over a PI: the gate-vs-gate conflict is NL103, the
  // PI violation is NL110 — both stand on their own.
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f\n"
      ".names b a\n1 1\n"
      ".names b a\n0 1\n"
      ".names a f\n1 1\n");
  EXPECT_EQ(rep.count_rule(kRulePiRedefined), 1u);
  EXPECT_EQ(rep.count_rule(kRuleMultiDriven), 1u);
}

TEST(NetlistLint, CleanNetlistHasNo110) {
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n11 1\n");
  EXPECT_EQ(rep.count_rule(kRulePiRedefined), 0u);
}

TEST(NetlistLint, DanglingGateFires104) {
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n11 1\n"
      ".names a b unused\n10 1\n01 1\n");
  ASSERT_EQ(rep.count_rule(kRuleDangling), 1u);
  EXPECT_EQ(rep.errors(), 0u);  // redundancy rules warn, they don't error
  EXPECT_EQ(rep.warnings(), 1u);
}

TEST(NetlistLint, DeadConeFires105) {
  // d1 -> d2 where d2 is read by nothing in a PO cone: d2 dangles, d1 is a
  // dead cone (it has a reader, but no path to an output).
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n11 1\n"
      ".names a b d1\n-1 1\n"
      ".names d1 d2\n1 1\n");
  EXPECT_EQ(rep.count_rule(kRuleDeadCone), 1u);
  EXPECT_EQ(rep.count_rule(kRuleDangling), 1u);
}

TEST(NetlistLint, ThreeInputGateFires106) {
  const LintReport rep = lint_string(
      ".inputs a b c\n"
      ".outputs f\n"
      ".names a b c f\n111 1\n");
  ASSERT_EQ(rep.count_rule(kRuleArity), 1u);
  EXPECT_GE(rep.errors(), 1u);
}

TEST(NetlistLint, NonLibraryCoverFires107) {
  // Two-input cover computing "a AND NOT b" — a valid function, but not a
  // cell of the AND/OR/XOR/NAND/NOR/XNOR library.
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n10 1\n");
  EXPECT_EQ(rep.count_rule(kRuleLibrary), 1u);
}

TEST(NetlistLint, DegenerateCoverFires107) {
  // Two declared fanins, but the cover ignores b: degenerate arity.
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n1- 1\n");
  EXPECT_EQ(rep.count_rule(kRuleLibrary), 1u);
}

TEST(NetlistLint, DuplicateGateFires108) {
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f g\n"
      ".names a b t1\n11 1\n"
      ".names b a t2\n11 1\n"  // commutative duplicate of t1
      ".names t1 f\n1 1\n"
      ".names t2 g\n1 1\n");
  EXPECT_EQ(rep.count_rule(kRuleDuplicateGate), 1u);
}

TEST(NetlistLint, BuffersExemptFrom108) {
  // Output aliasing: both outputs buffer the same net. This is standard
  // BLIF plumbing, not redundant logic.
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f g\n"
      ".names a b t\n11 1\n"
      ".names t f\n1 1\n"
      ".names t g\n1 1\n");
  EXPECT_EQ(rep.count_rule(kRuleDuplicateGate), 0u);
  EXPECT_TRUE(rep.clean()) << rep.to_text();
}

TEST(NetlistLint, SupportInflationFires109OnlyWhenEnabled) {
  // g = a & b; f = g | a. The fanin g's cone spans {a, b} which equals f's
  // whole support — the structural Theorem-5 shadow.
  const std::string blif =
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b g\n11 1\n"
      ".names g a f\n1- 1\n-1 1\n";
  EXPECT_EQ(lint_string(blif).count_rule(kRuleSupportInflation), 0u);
  NetlistLintOptions with_support;
  with_support.check_support = true;
  EXPECT_EQ(lint_string(blif, with_support).count_rule(kRuleSupportInflation), 1u);
}

TEST(NetlistLint, RelaxedRedundancyDemotesToInfo) {
  NetlistLintOptions relaxed;
  relaxed.relaxed_redundancy = true;
  const LintReport rep = lint_string(
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n11 1\n"
      ".names a b unused\n10 1\n01 1\n",
      relaxed);
  EXPECT_EQ(rep.count_rule(kRuleDangling), 1u);
  EXPECT_EQ(rep.warnings(), 0u);
  EXPECT_FALSE(rep.has_findings(LintSeverity::kWarning));
  EXPECT_TRUE(rep.has_findings(LintSeverity::kInfo));
}

// --- clean designs ----------------------------------------------------------

TEST(NetlistLint, CleanHandWrittenBlif) {
  const LintReport rep = lint_string(
      ".inputs a b c\n"
      ".outputs f g\n"
      ".names a b t\n11 1\n"
      ".names t c f\n1- 1\n-1 1\n"
      ".names t c g\n10 1\n01 1\n");
  EXPECT_TRUE(rep.clean()) << rep.to_text();
}

TEST(NetlistLint, PassThroughInputIsClean) {
  const LintReport rep = lint_string(
      ".inputs a\n"
      ".outputs a\n");
  EXPECT_TRUE(rep.clean()) << rep.to_text();
}

TEST(NetlistLint, ConstantOutputIsClean) {
  const LintReport rep = lint_string(
      ".inputs a\n"
      ".outputs f\n"
      ".names f\n1\n");
  EXPECT_TRUE(rep.clean()) << rep.to_text();
}

// The flow's output — including inverter absorption, which orphans netlist
// scaffolding nodes — must lint clean through the Netlist adapter.
TEST(NetlistLint, SynthesizedBenchmarksAreClean) {
  for (const char* name : {"9sym", "misex2", "vg2"}) {
    const Benchmark& bench = find_benchmark(name);
    BddManager mgr(bench.num_inputs);
    const std::vector<Isf> spec = bench.build(mgr);
    const FlowResult res = synthesize_bidecomp(
        mgr, spec, bench.input_names(), bench.output_names(), FlowOptions{});
    const LintReport rep = lint_netlist(res.netlist);
    EXPECT_TRUE(rep.clean()) << name << ":\n" << rep.to_text();
  }
}

// Write + re-read through the BLIF serializer: the shipped file must lint
// clean with the raw parser too.
TEST(NetlistLint, BlifRoundTripIsClean) {
  const Benchmark& bench = find_benchmark("misex2");
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  const FlowResult res = synthesize_bidecomp(
      mgr, spec, bench.input_names(), bench.output_names(), FlowOptions{});
  const std::string blif = write_blif(res.netlist, "misex2");
  const LintReport rep = lint_string(blif);
  EXPECT_TRUE(rep.clean()) << rep.to_text();
}

// --- flow + engine integration ----------------------------------------------

TEST(NetlistLint, FlowPopulatesLintReport) {
  const Benchmark& bench = find_benchmark("9sym");
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  FlowOptions options;
  options.lint = LintMode::kWarn;
  const FlowResult res = synthesize_bidecomp(
      mgr, spec, bench.input_names(), bench.output_names(), options);
  EXPECT_TRUE(res.lint.clean()) << res.lint.to_text();
}

// --- report plumbing ---------------------------------------------------------

TEST(LintReport, CountersAndSerializers) {
  LintReport rep;
  EXPECT_TRUE(rep.clean());
  rep.add(std::string(kRuleLoop), LintSeverity::kError, "n1", "loop");
  rep.add(std::string(kRuleDangling), LintSeverity::kWarning, "n2", "dangling");
  rep.add(std::string(kRuleDeadCone), LintSeverity::kInfo, "n3", "dead");
  EXPECT_EQ(rep.errors(), 1u);
  EXPECT_EQ(rep.warnings(), 1u);
  EXPECT_TRUE(rep.has_findings(LintSeverity::kInfo));
  EXPECT_TRUE(rep.has_findings(LintSeverity::kError));
  EXPECT_EQ(rep.count_rule(kRuleLoop), 1u);

  const std::string text = rep.to_text();
  EXPECT_NE(text.find("NL101:error: loop [n1]"), std::string::npos) << text;
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"NL104\""), std::string::npos) << json;

  LintReport other;
  other.add(std::string(kRuleArity), LintSeverity::kError, "n4", "wide");
  rep.merge(other);
  EXPECT_EQ(rep.errors(), 2u);
  EXPECT_EQ(rep.findings().size(), 4u);
}

TEST(LintReport, ModeParsing) {
  EXPECT_EQ(parse_lint_mode("off"), LintMode::kOff);
  EXPECT_EQ(parse_lint_mode("warn"), LintMode::kWarn);
  EXPECT_EQ(parse_lint_mode("error"), LintMode::kError);
  EXPECT_FALSE(parse_lint_mode("strict").has_value());
  EXPECT_STREQ(to_string(LintMode::kError), "error");
}

TEST(RawNetlist, LenientParserKeepsDefects) {
  const RawNetlist net = RawNetlist::parse_blif_string(
      ".inputs a\n"
      ".outputs f\n"
      ".names x y z w f\n1111 1\n"  // 4 fanins: strict reader would reject
      ".names f f\n1 1\n");         // self-loop: unrepresentable via Netlist
  EXPECT_EQ(net.gates.size(), 2u);
  EXPECT_EQ(net.gates[0].fanins.size(), 4u);
}

TEST(RawNetlist, ClassifyRecognizesLibraryCells) {
  const RawNetlist net = RawNetlist::parse_blif_string(
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n11 1\n"    // AND
      ".names a b g\n00 0\n"    // OR expressed through the off-set
      ".names a b h\n10 1\n01 1\n"  // XOR
      ".names a i\n0 1\n");     // NOT
  EXPECT_EQ(net.gates[0].classify(), GateType::kAnd);
  EXPECT_EQ(net.gates[1].classify(), GateType::kOr);
  EXPECT_EQ(net.gates[2].classify(), GateType::kXor);
  EXPECT_EQ(net.gates[3].classify(), GateType::kNot);
}

}  // namespace
}  // namespace bidec
