// Theorem 5: netlists produced by the bi-decomposition algorithm (grouping
// per Fig. 6, derivation per Theorems 3/4) are fully testable for single
// stuck-at faults. Checked exactly with the BDD-based ATPG on random ISFs
// and on structured benchmark functions.
#include <gtest/gtest.h>

#include <random>

#include "atpg/atpg.h"
#include "benchgen/benchgen.h"
#include "bidec/bidecomposer.h"
#include "tt/truth_table.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

class Theorem5Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem5Random, RandomIsfNetlistsAreFullyTestable) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 5 + GetParam() % 3;
  BddManager mgr(nv);
  const TruthTable on = TruthTable::random(nv, rng, 0.5);
  const TruthTable dc = TruthTable::random(nv, rng, 0.25);
  const Isf isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));

  BiDecomposer dec(mgr);
  dec.add_output("f", isf);
  const AtpgResult res = run_atpg(mgr, dec.netlist());
  EXPECT_EQ(res.redundant, 0u)
      << res.redundant << " of " << res.total_faults << " faults are redundant";
  EXPECT_DOUBLE_EQ(res.coverage(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem5Random, ::testing::Range<std::uint64_t>(0, 10));

TEST(Theorem5, BenchmarkNetlistsAreFullyTestable) {
  for (const char* name : {"9sym", "rd84", "5xp1"}) {
    const Benchmark& bench = find_benchmark(name);
    BddManager mgr(bench.num_inputs);
    const std::vector<Isf> spec = bench.build(mgr);
    BiDecomposer dec(mgr, {}, bench.input_names());
    const auto out_names = bench.output_names();
    for (std::size_t o = 0; o < spec.size(); ++o) dec.add_output(out_names[o], spec[o]);
    const AtpgResult res = run_atpg(mgr, dec.netlist());
    EXPECT_EQ(res.redundant, 0u) << name;
  }
}

TEST(Theorem5, ExorComponentRedundancyIsRemovable) {
  // Known boundary of Theorem 5 in this implementation: EXOR components
  // derived with don't-cares (Fig. 4, not the Theorem 3/4 formulas the
  // theorem's proof covers) can leave a few redundant faults. The
  // redundancy-removal pass (the paper's future-work ATPG integration)
  // restores full testability without changing the function.
  const Benchmark& bench = find_benchmark("t481");
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  BiDecomposer dec(mgr, {}, bench.input_names());
  dec.add_output("f", spec[0]);
  Netlist net = dec.netlist();
  const std::vector<Bdd> before = netlist_to_bdds(mgr, net);
  (void)remove_redundancies(mgr, net);
  const std::vector<Bdd> after = netlist_to_bdds(mgr, net);
  EXPECT_EQ(before[0], after[0]);  // functionality preserved
  const AtpgResult res = run_atpg(mgr, net);
  EXPECT_EQ(res.redundant, 0u);
  EXPECT_DOUBLE_EQ(res.coverage(), 1.0);
}

TEST(Theorem5, HoldsAfterInverterAbsorption) {
  // The NAND/NOR/XNOR mapping must not introduce redundancy either.
  std::mt19937_64 rng(99);
  BddManager mgr(6);
  const TruthTable on = TruthTable::random(6, rng, 0.5);
  const Isf isf = Isf::from_csf(on.to_bdd(mgr));
  BiDecomposer dec(mgr);
  dec.add_output("f", isf);
  dec.finish();
  const AtpgResult res = run_atpg(mgr, dec.netlist());
  EXPECT_EQ(res.redundant, 0u);
}

TEST(Theorem5, MultiOutputSharedLogicRemainsTestable) {
  std::mt19937_64 rng(100);
  BddManager mgr(6);
  std::vector<Isf> spec;
  for (int o = 0; o < 3; ++o) {
    const TruthTable on = TruthTable::random(6, rng, 0.5);
    spec.push_back(Isf::from_csf(on.to_bdd(mgr)));
  }
  BiDecomposer dec(mgr);
  for (std::size_t o = 0; o < spec.size(); ++o) {
    dec.add_output(numbered_name("f", o), spec[o]);
  }
  const AtpgResult res = run_atpg(mgr, dec.netlist());
  EXPECT_EQ(res.redundant, 0u);
}

}  // namespace
}  // namespace bidec
