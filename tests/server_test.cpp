// The synthesis daemon end to end: the JSON reader, the wire protocol, the
// sharded component cache, and BidecServer itself over real loopback
// sockets — admission control (reject and block), per-client caps,
// byte-stable responses across worker counts, warm-pool reuse, and
// drain-on-shutdown.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/benchgen.h"
#include "server/component_cache.h"
#include "server/json.h"
#include "server/protocol.h"
#include "server/server.h"

namespace bidec {
namespace {

// --- JSON reader ---------------------------------------------------------

TEST(ServerJson, ParsesScalarsAndNesting) {
  const auto doc = JsonValue::parse(
      R"({"a": 1, "b": -2.5, "t": true, "f": false, "n": null,)"
      R"( "arr": [1, 2, 3], "obj": {"x": "y"}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->get_uint("a"), 1u);
  ASSERT_NE(doc->get("b"), nullptr);
  EXPECT_DOUBLE_EQ(doc->get("b")->as_number(), -2.5);
  EXPECT_EQ(doc->get_bool("t"), true);
  EXPECT_EQ(doc->get_bool("f"), false);
  EXPECT_TRUE(doc->get("n")->is_null());
  ASSERT_NE(doc->get("arr"), nullptr);
  EXPECT_EQ(doc->get("arr")->as_array().size(), 3u);
  ASSERT_NE(doc->get("obj"), nullptr);
  EXPECT_EQ(doc->get("obj")->get_string("x"), "y");
}

TEST(ServerJson, DecodesStringEscapes) {
  const auto doc = JsonValue::parse(
      "{\"s\": \"q\\\"b\\\\n\\nt\\tu\\u0041e\\u00e9\"}");
  ASSERT_TRUE(doc.has_value());
  // A is 'A'; é is e-acute, two bytes of UTF-8.
  EXPECT_EQ(doc->get_string("s"), "q\"b\\n\nt\tuAe\xc3\xa9");
}

TEST(ServerJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::parse("").has_value());
  EXPECT_FALSE(JsonValue::parse("{}x").has_value());        // trailing garbage
  EXPECT_FALSE(JsonValue::parse("{\"a\": }").has_value());  // missing value
  EXPECT_FALSE(JsonValue::parse("{\"a\" 1}").has_value());  // missing colon
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("naked").has_value());
  EXPECT_FALSE(JsonValue::parse("[1, 2,]").has_value());    // trailing comma
  // Depth bomb: nesting past the parser's recursion cap must fail cleanly.
  std::string bomb(100, '[');
  bomb += std::string(100, ']');
  EXPECT_FALSE(JsonValue::parse(bomb).has_value());
}

TEST(ServerJson, TypedLookupsIgnoreWrongTypes) {
  const auto doc =
      JsonValue::parse(R"({"s": "ten", "f": 2.5, "neg": -3, "i": 7})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(doc->get_uint("s").has_value());    // string, not number
  EXPECT_FALSE(doc->get_uint("f").has_value());    // non-integral
  EXPECT_FALSE(doc->get_uint("neg").has_value());  // negative
  EXPECT_EQ(doc->get_uint("i"), 7u);
  EXPECT_FALSE(doc->get_string("i").has_value());
  EXPECT_FALSE(doc->get_uint("missing").has_value());
  EXPECT_EQ(doc->get("missing"), nullptr);
}

TEST(ServerJson, EscapeRoundTripsThroughParse) {
  const std::string nasty = "a\"b\\c\nd\te\x01 f";
  const std::string doc = "{\"s\": \"" + json_escape(nasty) + "\"}";
  const auto parsed = JsonValue::parse(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;
  EXPECT_EQ(parsed->get_string("s"), nasty);
}

// --- wire protocol -------------------------------------------------------

TEST(ServerProtocol, ParsesControlOps) {
  std::uint64_t id = 0;
  std::string error;
  for (const auto& [text, op] :
       std::vector<std::pair<std::string, RequestOp>>{
           {"ping", RequestOp::kPing},
           {"stats", RequestOp::kStats},
           {"shutdown", RequestOp::kShutdown}}) {
    const auto req = parse_request(
        "{\"op\": \"" + text + "\", \"id\": 9}", id, error);
    ASSERT_TRUE(req.has_value()) << text << ": " << error;
    EXPECT_EQ(req->op, op);
    EXPECT_EQ(req->id, 9u);
  }
}

TEST(ServerProtocol, ParsesSynthWithAllFields) {
  std::uint64_t id = 0;
  std::string error;
  const auto req = parse_request(
      R"({"op":"synth","id":3,"pla":".i 2\n.o 1\n11 1\n.e","name":"tiny",)"
      R"("verify":"both","timeout_ms":500,"step_budget":1000,)"
      R"("node_budget":2000,"max_retries":2,"degrade":true,"netlist":true})",
      id, error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_EQ(req->op, RequestOp::kSynth);
  EXPECT_EQ(req->id, 3u);
  EXPECT_EQ(req->spec.name, "tiny");
  EXPECT_EQ(req->spec.verify, VerifyEngine::kBoth);
  EXPECT_EQ(req->spec.timeout_ms, 500u);
  EXPECT_EQ(req->spec.step_budget, 1000u);
  EXPECT_EQ(req->spec.node_budget, 2000u);
  EXPECT_EQ(req->spec.max_retries, 2u);
  EXPECT_TRUE(req->spec.degrade);
  EXPECT_TRUE(req->want_netlist);
  const auto* pla = std::get_if<PlaFile>(&req->spec.source);
  ASSERT_NE(pla, nullptr);
  EXPECT_EQ(pla->num_inputs, 2u);
  EXPECT_EQ(pla->num_outputs, 1u);
}

TEST(ServerProtocol, RejectsBadRequestsButKeepsTheId) {
  std::uint64_t id = 0;
  std::string error;
  // The id must survive a failed parse so the error response can be matched.
  EXPECT_FALSE(parse_request(R"({"id": 77})", id, error).has_value());
  EXPECT_EQ(id, 77u);
  EXPECT_FALSE(error.empty());

  EXPECT_FALSE(parse_request("not json at all", id, error).has_value());
  EXPECT_FALSE(
      parse_request(R"({"op":"transmogrify","id":1})", id, error).has_value());
  // synth needs exactly one of path/pla.
  EXPECT_FALSE(parse_request(R"({"op":"synth","id":1})", id, error).has_value());
  EXPECT_FALSE(parse_request(
                   R"({"op":"synth","id":1,"path":"a.pla","pla":".i 1\n"})",
                   id, error)
                   .has_value());
  // A malformed inline cover fails at admission, not on a worker.
  EXPECT_FALSE(
      parse_request(R"({"op":"synth","id":1,"pla":"garbage"})", id, error)
          .has_value());
  EXPECT_FALSE(parse_request(
                   R"({"op":"synth","id":1,"pla":".i 1\n.o 1\n1 1\n.e",)"
                   R"("verify":"psychic"})",
                   id, error)
                   .has_value());
}

TEST(ServerProtocol, ErrorResponseEscapesTheMessage) {
  const std::string resp = error_response(4, "bad_request", "say \"no\"\n");
  const auto doc = JsonValue::parse(resp);
  ASSERT_TRUE(doc.has_value()) << resp;
  EXPECT_EQ(doc->get_uint("id"), 4u);
  EXPECT_EQ(doc->get_string("status"), "bad_request");
  EXPECT_EQ(doc->get_string("error"), "say \"no\"\n");
}

TEST(ServerProtocol, SynthResponseGraftsBlifWhenAsked) {
  JobReport report;
  report.job_id = 12;
  report.name = "tiny";
  report.status = JobStatus::kOk;
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  net.add_output("f", net.add_and(a, b));

  const std::string bare = synth_response(report, net, /*want_netlist=*/false);
  const auto bare_doc = JsonValue::parse(bare);
  ASSERT_TRUE(bare_doc.has_value()) << bare;
  EXPECT_EQ(bare_doc->get("blif"), nullptr);

  const std::string with = synth_response(report, net, /*want_netlist=*/true);
  const auto with_doc = JsonValue::parse(with);
  ASSERT_TRUE(with_doc.has_value()) << with;
  const auto blif = with_doc->get_string("blif");
  ASSERT_TRUE(blif.has_value());
  EXPECT_NE(blif->find(".model"), std::string::npos);
  EXPECT_NE(blif->find(".names"), std::string::npos);
}

// --- sharded component cache ---------------------------------------------

ComponentSignature make_sig(std::uint64_t hash, std::uint64_t q_word) {
  ComponentSignature sig;
  sig.k = 3;
  sig.q_bits = {q_word};
  sig.nr_bits = {q_word | 0x5a};
  sig.hash = hash;
  return sig;
}

Netlist tiny_component() {
  Netlist impl;
  const SignalId p0 = impl.add_input("p0");
  const SignalId p1 = impl.add_input("p1");
  impl.add_output("f", impl.add_and(p0, p1));
  return impl;
}

TEST(ServerComponentCache, PublishLookupRoundTrip) {
  ServerComponentCache cache(8);
  const ComponentSignature sig = make_sig(0x1234, 0x0f);
  EXPECT_FALSE(cache.lookup(sig).has_value());
  cache.publish(sig, tiny_component());
  const auto hit = cache.lookup(sig);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->impl.num_inputs(), 2u);
  const ComponentCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.publishes, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ServerComponentCache, HashCollisionReadsAsMiss) {
  ServerComponentCache cache(8);
  cache.publish(make_sig(0xbeef, 0x0f), tiny_component());
  // Same 64-bit hash, different interval bits: must miss, never return the
  // wrong-interval component, and count the collision.
  const ComponentSignature imposter = make_sig(0xbeef, 0xf0);
  EXPECT_FALSE(cache.lookup(imposter).has_value());
  EXPECT_EQ(cache.stats().collisions, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ServerComponentCache, RejectEvictsTheEntry) {
  ServerComponentCache cache(8);
  const ComponentSignature sig = make_sig(0x77, 0x33);
  cache.publish(sig, tiny_component());
  ASSERT_TRUE(cache.lookup(sig).has_value());
  cache.reject(sig);
  EXPECT_FALSE(cache.lookup(sig).has_value());
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServerComponentCache, FifoEvictionWithinAShard) {
  ServerComponentCache cache(/*max_entries_per_shard=*/2);
  // Equal top-4 hash bits land all three in the same shard.
  const ComponentSignature s1 = make_sig(0x1000000000000001ull, 1);
  const ComponentSignature s2 = make_sig(0x1000000000000002ull, 2);
  const ComponentSignature s3 = make_sig(0x1000000000000003ull, 3);
  cache.publish(s1, tiny_component());
  cache.publish(s2, tiny_component());
  cache.publish(s3, tiny_component());
  EXPECT_EQ(cache.stats().evicted, 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(s1).has_value());  // oldest went first
  EXPECT_TRUE(cache.lookup(s2).has_value());
  EXPECT_TRUE(cache.lookup(s3).has_value());
}

TEST(ServerComponentCache, RepublishReplacesInPlace) {
  ServerComponentCache cache(8);
  const ComponentSignature sig = make_sig(0x2000000000000001ull, 9);
  cache.publish(sig, tiny_component());
  cache.publish(sig, tiny_component());
  EXPECT_EQ(cache.stats().replaced, 1u);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

// --- the daemon over real sockets ----------------------------------------

/// Blocking newline-framed client against 127.0.0.1:<port>.
class LineClient {
 public:
  explicit LineClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  bool send_line(const std::string& s) {
    std::string line = s;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n =
          ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::optional<std::string> recv_line() {
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char tmp[4096];
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n <= 0) return std::nullopt;
      buf_.append(tmp, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

/// A synth request line for an inline cover.
std::string synth_line(std::uint64_t id, const PlaFile& pla,
                       const std::string& extra = "") {
  std::string line = "{\"op\": \"synth\", \"id\": " + std::to_string(id) +
                     ", \"pla\": \"" + json_escape(pla.write()) +
                     "\", \"name\": \"req" + std::to_string(id) + "\"";
  line += extra;
  line += "}";
  return line;
}

PlaFile small_pla(unsigned seed) {
  return random_control_pla(/*inputs=*/6, /*outputs=*/2, /*cubes=*/10,
                            /*min_lits=*/2, /*max_lits=*/4,
                            /*outs_per_cube=*/1, /*dc_fraction=*/0.0, seed);
}

/// Big enough that a job occupies a worker for a while — what the
/// admission tests need so pipelined requests pile up behind it.
PlaFile slow_pla(unsigned seed) {
  return random_control_pla(/*inputs=*/14, /*outputs=*/6, /*cubes=*/90,
                            /*min_lits=*/3, /*max_lits=*/8,
                            /*outs_per_cube=*/2, /*dc_fraction=*/0.0, seed);
}

std::optional<JsonValue> parse_line(const std::optional<std::string>& line) {
  if (!line) return std::nullopt;
  return JsonValue::parse(*line);
}

TEST(BidecServer, PingStatsAndShutdown) {
  ServerOptions opts;
  opts.num_workers = 2;
  BidecServer server(opts);
  server.start();
  ASSERT_NE(server.port(), 0);

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_line(R"({"op":"ping","id":1})"));
  auto pong = parse_line(client.recv_line());
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->get_uint("id"), 1u);
  EXPECT_EQ(pong->get_string("status"), "ok");
  EXPECT_EQ(pong->get_string("op"), "ping");

  ASSERT_TRUE(client.send_line(R"({"op":"stats","id":2})"));
  auto stats = parse_line(client.recv_line());
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->get_string("status"), "ok");
  ASSERT_NE(stats->get("jobs"), nullptr);
  ASSERT_NE(stats->get("cache"), nullptr);
  ASSERT_NE(stats->get("pool"), nullptr);
  EXPECT_EQ(stats->get("jobs")->get_uint("connections"), 1u);

  ASSERT_TRUE(client.send_line(R"({"op":"shutdown","id":3})"));
  auto ack = parse_line(client.recv_line());
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->get_string("op"), "shutdown");
  server.wait();

  // The listener is gone: a fresh connect must fail.
  LineClient late(server.port());
  EXPECT_FALSE(late.connected());
}

TEST(BidecServer, InlineSynthVerifiesOnBothEngines) {
  BidecServer server((ServerOptions{}));
  server.start();
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());

  const PlaFile pla = small_pla(1);
  ASSERT_TRUE(client.send_line(
      synth_line(5, pla, ", \"verify\": \"both\", \"netlist\": true")));
  auto resp = parse_line(client.recv_line());
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->get_uint("id"), 5u);
  EXPECT_EQ(resp->get_string("status"), "ok");
  ASSERT_NE(resp->get("verify"), nullptr);
  EXPECT_EQ(resp->get("verify")->get_uint("bdd"), 1u);
  EXPECT_EQ(resp->get("verify")->get_uint("sat"), 1u);
  const auto blif = resp->get_string("blif");
  ASSERT_TRUE(blif.has_value());
  EXPECT_NE(blif->find(".model"), std::string::npos);
  server.stop();
}

TEST(BidecServer, BadLinesAndMissingFilesKeepTheConnectionAlive) {
  BidecServer server((ServerOptions{}));
  server.start();
  LineClient client(server.port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.send_line("this is not json"));
  auto bad = parse_line(client.recv_line());
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->get_string("status"), "bad_request");

  ASSERT_TRUE(client.send_line(
      R"({"op":"synth","id":8,"path":"/nonexistent/missing.pla"})"));
  auto err = parse_line(client.recv_line());
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->get_uint("id"), 8u);
  EXPECT_EQ(err->get_string("status"), "error");

  // The connection survived both failures.
  ASSERT_TRUE(client.send_line(R"({"op":"ping","id":9})"));
  auto pong = parse_line(client.recv_line());
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->get_string("status"), "ok");
  EXPECT_EQ(server.stats().bad_requests, 1u);
  server.stop();
}

/// Send `lines` pipelined on one connection and return the responses keyed
/// by id (responses may arrive out of order when workers race).
std::map<std::uint64_t, std::string> roundtrip(std::uint16_t port,
                                               const std::vector<std::string>& lines) {
  LineClient client(port);
  EXPECT_TRUE(client.connected());
  for (const std::string& line : lines) EXPECT_TRUE(client.send_line(line));
  std::map<std::uint64_t, std::string> by_id;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto line = client.recv_line();
    if (!line) break;
    const auto doc = JsonValue::parse(*line);
    if (!doc) {
      ADD_FAILURE() << "unparseable response: " << *line;
      continue;
    }
    by_id[doc->get_uint("id").value_or(0)] = *line;
  }
  return by_id;
}

TEST(BidecServer, ResponsesAreByteStableAcrossWorkerCounts) {
  // The same pipelined request mix against a 1-worker and a 4-worker
  // daemon must produce byte-identical responses per id — the contract
  // that lets clients diff runs regardless of server parallelism.
  std::vector<std::string> lines;
  std::uint64_t id = 0;
  for (unsigned seed : {1u, 2u, 3u}) {
    for (int rep = 0; rep < 2; ++rep) {
      lines.push_back(
          synth_line(++id, small_pla(seed), ", \"verify\": \"both\""));
    }
  }

  std::map<std::uint64_t, std::string> serial, parallel;
  {
    ServerOptions opts;
    opts.num_workers = 1;
    BidecServer server(opts);
    server.start();
    serial = roundtrip(server.port(), lines);
    server.stop();
  }
  {
    ServerOptions opts;
    opts.num_workers = 4;
    BidecServer server(opts);
    server.start();
    parallel = roundtrip(server.port(), lines);
    server.stop();
  }
  ASSERT_EQ(serial.size(), lines.size());
  ASSERT_EQ(parallel.size(), lines.size());
  for (const auto& [rid, line] : serial) {
    EXPECT_EQ(parallel.at(rid), line) << "response " << rid << " diverged";
  }
}

TEST(BidecServer, WarmPoolAndComponentCacheServeRepeats) {
  ServerOptions opts;
  opts.num_workers = 1;
  BidecServer server(opts);
  server.start();

  std::vector<std::string> lines;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    lines.push_back(synth_line(id, small_pla(4), ", \"verify\": \"both\""));
  }
  const auto responses = roundtrip(server.port(), lines);
  ASSERT_EQ(responses.size(), 4u);
  for (const auto& [rid, line] : responses) {
    const auto doc = JsonValue::parse(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->get_string("status"), "ok") << line;
  }
  // Identical jobs on one worker: the warm lease served all of them, and
  // the cross-job cache turned the repeats into component hits.
  EXPECT_GT(server.cache_stats().publishes, 0u);
  EXPECT_GT(server.cache_stats().hits, 0u);
  EXPECT_EQ(server.pool_stats().leases, 1u);
  server.stop();
}

TEST(BidecServer, SharedCacheCanBeDisabled) {
  ServerOptions opts;
  opts.shared_cache = false;
  BidecServer server(opts);
  server.start();
  const auto responses =
      roundtrip(server.port(), {synth_line(1, small_pla(4)),
                                synth_line(2, small_pla(4))});
  ASSERT_EQ(responses.size(), 2u);
  for (const auto& [rid, line] : responses) {
    EXPECT_NE(line.find("\"status\": \"ok\""), std::string::npos) << line;
  }
  EXPECT_EQ(server.cache_stats().lookups, 0u);
  server.stop();
}

TEST(BidecServer, FullQueueRejectsUnderRejectPolicy) {
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  opts.per_client_inflight = 64;
  opts.admission = AdmissionPolicy::kReject;
  BidecServer server(opts);
  server.start();

  // Ten heavyweight jobs pipelined in one write: the first occupies the
  // worker, one sits in the queue, the rest must bounce.
  std::vector<std::string> lines;
  for (std::uint64_t id = 1; id <= 10; ++id) {
    lines.push_back(synth_line(id, slow_pla(static_cast<unsigned>(id))));
  }
  const auto responses = roundtrip(server.port(), lines);
  ASSERT_EQ(responses.size(), 10u);
  std::size_t ok = 0, rejected = 0;
  for (const auto& [rid, line] : responses) {
    const auto doc = JsonValue::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const auto status = doc->get_string("status");
    if (status == "ok") ++ok;
    if (status == "rejected") ++rejected;
  }
  EXPECT_EQ(ok + rejected, 10u);
  EXPECT_GE(ok, 1u);
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(server.stats().rejected_queue, rejected);
  server.stop();
}

TEST(BidecServer, FullQueueBlocksUnderBlockPolicy) {
  // Same pressure, kBlock policy: nothing is rejected — the connection
  // thread parks until the queue has room, and every job completes.
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 1;
  opts.per_client_inflight = 64;
  opts.admission = AdmissionPolicy::kBlock;
  BidecServer server(opts);
  server.start();

  std::vector<std::string> lines;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    lines.push_back(synth_line(id, small_pla(static_cast<unsigned>(id))));
  }
  const auto responses = roundtrip(server.port(), lines);
  ASSERT_EQ(responses.size(), 6u);
  for (const auto& [rid, line] : responses) {
    EXPECT_NE(line.find("\"status\": \"ok\""), std::string::npos) << line;
  }
  EXPECT_EQ(server.stats().rejected_queue, 0u);
  // The completed counter is bumped after the response is written, so only
  // the post-stop() view (workers joined) is guaranteed to have settled.
  server.stop();
  EXPECT_EQ(server.stats().completed, 6u);
}

TEST(BidecServer, PerClientInflightCapRejects) {
  ServerOptions opts;
  opts.num_workers = 1;
  opts.queue_capacity = 64;
  opts.per_client_inflight = 1;
  BidecServer server(opts);
  server.start();

  std::vector<std::string> lines;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    lines.push_back(synth_line(id, slow_pla(static_cast<unsigned>(id))));
  }
  const auto responses = roundtrip(server.port(), lines);
  ASSERT_EQ(responses.size(), 6u);
  std::size_t ok = 0, rejected = 0;
  for (const auto& [rid, line] : responses) {
    const auto doc = JsonValue::parse(line);
    const auto status = doc->get_string("status");
    if (status == "ok") ++ok;
    if (status == "rejected") ++rejected;
  }
  EXPECT_EQ(ok + rejected, 6u);
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(server.stats().rejected_client, rejected);
  server.stop();
}

TEST(BidecServer, ShutdownDrainsAdmittedJobs) {
  ServerOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = 64;
  opts.per_client_inflight = 64;
  BidecServer server(opts);
  server.start();

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  constexpr std::uint64_t kJobs = 6;
  for (std::uint64_t id = 1; id <= kJobs; ++id) {
    ASSERT_TRUE(client.send_line(synth_line(id, small_pla(static_cast<unsigned>(id)))));
  }
  ASSERT_TRUE(client.send_line(R"({"op":"shutdown","id":99})"));

  // Every admitted synth job is answered before the socket closes.
  std::map<std::uint64_t, std::string> by_id;
  for (std::uint64_t i = 0; i <= kJobs; ++i) {
    const auto line = client.recv_line();
    ASSERT_TRUE(line.has_value()) << "connection closed after " << i << " lines";
    const auto doc = JsonValue::parse(*line);
    ASSERT_TRUE(doc.has_value());
    by_id[doc->get_uint("id").value_or(0)] = *line;
  }
  server.wait();
  for (std::uint64_t id = 1; id <= kJobs; ++id) {
    ASSERT_TRUE(by_id.contains(id)) << "job " << id << " unanswered";
    EXPECT_NE(by_id[id].find("\"status\": \"ok\""), std::string::npos)
        << by_id[id];
  }
  EXPECT_TRUE(by_id.contains(99u));
  EXPECT_EQ(server.stats().completed, kJobs);
}

TEST(BidecServer, SixteenConcurrentClients) {
  ServerOptions opts;
  opts.num_workers = 4;
  opts.queue_capacity = 128;
  opts.per_client_inflight = 8;
  BidecServer server(opts);
  server.start();

  constexpr unsigned kClients = 16;
  std::vector<std::thread> threads;
  std::vector<unsigned> ok_counts(kClients, 0);
  for (unsigned c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const std::vector<std::string> lines{
          synth_line(1, small_pla(c % 4), ", \"verify\": \"both\""),
          synth_line(2, small_pla((c + 1) % 4))};
      const auto responses = roundtrip(server.port(), lines);
      for (const auto& [rid, line] : responses) {
        if (line.find("\"status\": \"ok\"") != std::string::npos) ++ok_counts[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (unsigned c = 0; c < kClients; ++c) {
    EXPECT_EQ(ok_counts[c], 2u) << "client " << c;
  }
  server.stop();
  EXPECT_EQ(server.stats().completed, 2u * kClients);
  EXPECT_GE(server.stats().connections, kClients);
}

}  // namespace
}  // namespace bidec
