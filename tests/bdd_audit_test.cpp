// Tests for BddManager::audit() and the cross-manager ownership guard.
//
// Healthy managers — fresh, mid-computation, after dropping handles, after
// GC — must audit clean. Every BM2xx rule is then exercised by corrupting
// the manager's private state through BddTestCorruptor (a friend of
// BddManager declared for exactly this purpose) and asserting the audit
// reports the corresponding rule id.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bdd/bdd.h"

namespace bidec {

// Test-only corruption hook (friend of BddManager): pokes private node
// storage so each audit invariant can be violated in isolation. NodeId
// parameters are edges (as returned by Bdd::id()); the corruptor resolves
// them to node slots itself.
struct BddTestCorruptor {
  using Node = BddManager::Node;

  static std::uint32_t index_of(NodeId e) { return BddManager::edge_index(e); }
  static NodeId complement(NodeId e) { return BddManager::edge_not(e); }

  static std::size_t bucket_of(BddManager& m, unsigned var, NodeId lo, NodeId hi) {
    return m.unique_hash(lo, hi) & (m.subtables_[var].buckets.size() - 1);
  }

  /// Append a fresh live node linked into its correct subtable bucket,
  /// keeping the stats and level counters consistent so only the intended
  /// rule fires. `lo`/`hi` are edges and are stored verbatim (no
  /// canonicalization — that is the point).
  static NodeId append_node(BddManager& m, unsigned var, NodeId lo, NodeId hi) {
    Node node{var, lo, hi, kInvalidId, 1};
    const std::size_t b = bucket_of(m, var, lo, hi);
    node.next = m.subtables_[var].buckets[b];
    m.nodes_.push_back(node);
    const std::uint32_t idx = static_cast<std::uint32_t>(m.nodes_.size() - 1);
    m.subtables_[var].buckets[b] = idx;
    ++m.subtables_[var].count;
    ++m.stats_.live_nodes;
    return BddManager::make_edge(idx, 0);
  }

  static void set_var(BddManager& m, NodeId e, std::uint32_t var) {
    m.nodes_[index_of(e)].var = var;
  }
  static void set_lo(BddManager& m, NodeId e, NodeId lo) {
    m.nodes_[index_of(e)].lo = lo;
  }
  static void set_hi(BddManager& m, NodeId e, NodeId hi) {
    m.nodes_[index_of(e)].hi = hi;
  }
  static void set_refs(BddManager& m, NodeId e, std::uint32_t refs) {
    m.nodes_[index_of(e)].refs = refs;
  }
  static void bump_live_nodes(BddManager& m) { ++m.stats_.live_nodes; }
  static void set_subtable_count(BddManager& m, unsigned var, std::size_t count) {
    m.subtables_[var].count = count;
  }

  static void unlink_from_bucket(BddManager& m, NodeId e) {
    const std::uint32_t idx = index_of(e);
    const Node& n = m.nodes_[idx];
    std::uint32_t* link = &m.subtables_[n.var].buckets[bucket_of(m, n.var, n.lo, n.hi)];
    while (*link != kInvalidId) {
      if (*link == idx) {
        *link = m.nodes_[idx].next;
        return;
      }
      link = &m.nodes_[*link].next;
    }
  }

  static void set_cache(BddManager& m, std::size_t slot, std::uint32_t tag,
                        NodeId a, NodeId b, NodeId c, NodeId result) {
    m.cache_[slot] = BddManager::CacheEntry{tag, a, b, c, result, 1};
  }

  static std::uint32_t op_ite() { return BddManager::kOpIte; }
};

namespace {

bool has_rule(const std::vector<BddAuditFinding>& findings, const std::string& rule) {
  for (const BddAuditFinding& f : findings) {
    if (f.rule == rule) return true;
  }
  return false;
}

std::string dump(const std::vector<BddAuditFinding>& findings) {
  std::string out;
  for (const BddAuditFinding& f : findings) {
    out += f.rule + " [" + f.object + "] " + f.message + "\n";
  }
  return out;
}

// --- healthy managers --------------------------------------------------------

TEST(BddAudit, FreshManagerIsClean) {
  BddManager mgr(6);
  EXPECT_TRUE(mgr.audit().empty()) << dump(mgr.audit());
}

TEST(BddAudit, CleanAfterMixedOperations) {
  BddManager mgr(8);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | ~mgr.var(2);
  const Bdd g = mgr.exists(f, mgr.make_cube({0u}));
  const Bdd h = mgr.compose(f, 2, g ^ mgr.var(5));
  const Bdd k = mgr.constrain(h, mgr.var(1) | mgr.var(3));
  (void)mgr.support_vars(k);
  (void)mgr.sat_count(f);
  EXPECT_TRUE(mgr.audit().empty()) << dump(mgr.audit());
}

TEST(BddAudit, CleanWithUncollectedGarbageAndAfterGc) {
  BddManager mgr(8);
  Bdd keep = mgr.var(0) ^ mgr.var(1);
  {
    Bdd scratch = mgr.bdd_false();
    for (unsigned v = 0; v + 1 < mgr.num_vars(); ++v) {
      scratch |= mgr.var(v) & mgr.var(v + 1);
    }
  }  // scratch dies: dead nodes linger until the next collection
  EXPECT_TRUE(mgr.audit().empty()) << dump(mgr.audit());
  mgr.collect_garbage();
  EXPECT_TRUE(mgr.audit().empty()) << dump(mgr.audit());
  EXPECT_TRUE(keep.is_valid());
}

TEST(BddAudit, CleanUnderRandomNegationWrapping) {
  // Complement edges thread through every operation; a mixed workload with
  // explicit negations at every step must keep all invariants.
  BddManager mgr(8);
  Bdd acc = mgr.var(0);
  for (unsigned v = 1; v < 8; ++v) {
    acc = (v % 2 != 0) ? ~(acc & mgr.var(v)) : (~acc ^ mgr.nvar(v));
  }
  const Bdd q = ~mgr.exists(~acc, mgr.make_cube({1u, 3u}));
  (void)mgr.forall(q, mgr.make_cube({0u}));
  mgr.collect_garbage();
  EXPECT_TRUE(mgr.audit().empty()) << dump(mgr.audit());
}

// --- per-rule corruption -----------------------------------------------------

TEST(BddAudit, DuplicateTripleFires201) {
  BddManager mgr(4);
  const Bdd f = mgr.var(2);  // stores node (2, true, false) + complement edge
  BddTestCorruptor::append_node(mgr, 2, kTrueId, kFalseId);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM201")) << dump(findings);
  (void)f;
}

TEST(BddAudit, RedundantNodeFires202) {
  BddManager mgr(4);
  const Bdd x = mgr.nvar(1);  // regular edge to the var-1 node
  BddTestCorruptor::append_node(mgr, 0, x.id(), x.id());
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM202")) << dump(findings);
  EXPECT_FALSE(has_rule(findings, "BM207")) << dump(findings);
}

TEST(BddAudit, LevelOrderViolationFires203) {
  BddManager mgr(4);
  const Bdd f = mgr.var(0) & mgr.var(1);
  // Sink the root to its child's level: order is no longer strict.
  BddTestCorruptor::set_var(mgr, f.id(), 1);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM203")) << dump(findings);
}

TEST(BddAudit, VariableOutOfRangeFires204) {
  BddManager mgr(4);
  const Bdd f = mgr.var(3);
  BddTestCorruptor::set_var(mgr, f.id(), mgr.num_vars() + 3);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM204")) << dump(findings);
}

TEST(BddAudit, DanglingChildPointerFires204) {
  BddManager mgr(4);
  const Bdd f = mgr.var(1);
  BddTestCorruptor::set_hi(mgr, f.id(), 9999);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM204")) << dump(findings);
}

TEST(BddAudit, BucketChainMissFires205) {
  BddManager mgr(4);
  const Bdd f = mgr.var(0) | mgr.var(2);
  BddTestCorruptor::unlink_from_bucket(mgr, f.id());
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM205")) << dump(findings);
}

TEST(BddAudit, OrphanTombstoneFires206) {
  BddManager mgr(4);
  const Bdd f = mgr.var(2);
  // Tombstone the slot without threading it onto the free list.
  BddTestCorruptor::set_var(mgr, f.id(), kInvalidId);
  BddTestCorruptor::set_refs(mgr, f.id(), 0);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM206")) << dump(findings);
}

TEST(BddAudit, StatsDriftFires207) {
  BddManager mgr(4);
  const Bdd f = mgr.var(0) & mgr.var(1);
  BddTestCorruptor::bump_live_nodes(mgr);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM207")) << dump(findings);
  (void)f;
}

TEST(BddAudit, CacheDeadReferenceFires208) {
  BddManager mgr(4);
  BddTestCorruptor::set_cache(mgr, 0, BddTestCorruptor::op_ite(), kFalseId,
                              kTrueId, kFalseId, 123456);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM208")) << dump(findings);
}

TEST(BddAudit, UnknownCacheTagFires209) {
  BddManager mgr(4);
  BddTestCorruptor::set_cache(mgr, 0, 0x7f, kFalseId, kFalseId, kFalseId, kTrueId);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM209")) << dump(findings);
}

TEST(BddAudit, NonComposePayloadBitsFire209) {
  BddManager mgr(4);
  BddTestCorruptor::set_cache(mgr, 0, BddTestCorruptor::op_ite() | (5u << 8),
                              kFalseId, kFalseId, kFalseId, kTrueId);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM209")) << dump(findings);
}

TEST(BddAudit, BrokenTerminalFires210) {
  BddManager mgr(4);
  BddTestCorruptor::set_refs(mgr, kTrueId, 0);  // both polarities share node 0
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM210")) << dump(findings);
}

TEST(BddAudit, TerminalLevelDriftFires210) {
  BddManager mgr(4);
  BddTestCorruptor::set_var(mgr, kFalseId, 0);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM210")) << dump(findings);
}

TEST(BddAudit, StoredComplementedHighEdgeFires211) {
  BddManager mgr(4);
  const Bdd x = mgr.nvar(1);  // regular edge to the var-1 node
  // make_node would push this complement into the parent edge; storing it
  // raw violates the regular-high-edge canonicity rule.
  BddTestCorruptor::append_node(mgr, 0, kFalseId,
                                BddTestCorruptor::complement(x.id()));
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM211")) << dump(findings);
  EXPECT_FALSE(has_rule(findings, "BM205")) << dump(findings);
}

TEST(BddAudit, StrayTerminalNodeFires212) {
  BddManager mgr(4);
  const Bdd f = mgr.var(2);
  // A second node at the terminal level is a non-canonical constant.
  BddTestCorruptor::set_var(mgr, f.id(), mgr.num_vars());
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM212")) << dump(findings);
  EXPECT_FALSE(has_rule(findings, "BM204")) << dump(findings);
}

TEST(BddAudit, TaggedTerminalSelfEdgeFires212) {
  BddManager mgr(4);
  // The terminal's self-edges must stay the regular false edge; a tag here
  // would flip constant folding everywhere.
  BddTestCorruptor::set_lo(mgr, kFalseId, kTrueId);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM212")) << dump(findings);
}

TEST(BddAudit, SubtableCountDriftFires213) {
  BddManager mgr(4);
  const Bdd f = mgr.var(1);
  BddTestCorruptor::set_subtable_count(mgr, 1, 5);
  const auto findings = mgr.audit();
  EXPECT_TRUE(has_rule(findings, "BM213")) << dump(findings);
  (void)f;
}

// --- cross-manager ownership guard ------------------------------------------

TEST(BddOwnership, ForeignHandleThrowsFromConnectives) {
  BddManager a(4);
  BddManager b(4);
  const Bdd fa = a.var(0);
  const Bdd fb = b.var(0);
  EXPECT_THROW((void)a.apply_and(fa, fb), BddOwnershipError);
  EXPECT_THROW((void)a.apply_or(fb, fa), BddOwnershipError);
  EXPECT_THROW((void)a.apply_not(fb), BddOwnershipError);
  EXPECT_THROW((void)a.ite(fa, fb, fa), BddOwnershipError);
  // Operator syntax dispatches to the left operand's manager.
  EXPECT_THROW((void)(fa & fb), BddOwnershipError);
  EXPECT_THROW((void)(fa ^ fb), BddOwnershipError);
}

TEST(BddOwnership, ForeignHandleThrowsFromQuantifiersAndQueries) {
  BddManager a(4);
  BddManager b(4);
  const Bdd fa = a.var(1) & a.var(2);
  const Bdd fb = b.var(1);
  const Bdd cube_b = b.make_cube({1u});
  EXPECT_THROW((void)a.exists(fa, cube_b), BddOwnershipError);
  EXPECT_THROW((void)a.forall(fb, a.make_cube({1u})), BddOwnershipError);
  EXPECT_THROW((void)a.and_exists(fa, fb, a.make_cube({1u})), BddOwnershipError);
  EXPECT_THROW((void)a.cofactor(fb, 1, true), BddOwnershipError);
  EXPECT_THROW((void)a.restrict_to(fa, fb), BddOwnershipError);
  EXPECT_THROW((void)a.compose(fa, 1, fb), BddOwnershipError);
  EXPECT_THROW((void)a.support_vars(fb), BddOwnershipError);
  EXPECT_THROW((void)a.depends_on(fb, 1), BddOwnershipError);
  EXPECT_THROW((void)a.sat_count(fb), BddOwnershipError);
  EXPECT_THROW((void)a.to_string(fb), BddOwnershipError);
}

TEST(BddOwnership, DefaultConstructedHandleThrowsWithDistinctMessage) {
  BddManager mgr(4);
  const Bdd invalid;
  try {
    (void)mgr.apply_not(invalid);
    FAIL() << "expected BddOwnershipError";
  } catch (const BddOwnershipError& e) {
    EXPECT_NE(std::string(e.what()).find("default-constructed"), std::string::npos)
        << e.what();
  }
  try {
    (void)mgr.apply_and(mgr.var(0), Bdd());
    FAIL() << "expected BddOwnershipError";
  } catch (const BddOwnershipError& e) {
    EXPECT_NE(std::string(e.what()).find("default-constructed"), std::string::npos)
        << e.what();
  }
}

TEST(BddOwnership, ForeignHandleMessageNamesTheOperation) {
  BddManager a(4);
  BddManager b(4);
  const Bdd fb = b.var(0);
  try {
    (void)a.apply_xor(a.var(0), fb);
    FAIL() << "expected BddOwnershipError";
  } catch (const BddOwnershipError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("apply_xor"), std::string::npos) << what;
    EXPECT_NE(what.find("different BddManager"), std::string::npos) << what;
  }
}

TEST(BddOwnership, SharedDagSizeSkipsInvalidHandles) {
  BddManager mgr(4);
  const std::vector<Bdd> fs = {mgr.var(0) & mgr.var(1), Bdd(), mgr.var(2)};
  EXPECT_GT(mgr.dag_size(fs), 0u);  // invalid entries are skipped, not fatal
}

TEST(BddOwnership, ManagerStaysUsableAfterOwnershipError) {
  BddManager a(4);
  BddManager b(4);
  const Bdd fa = a.var(0);
  EXPECT_THROW((void)a.apply_and(fa, b.var(0)), BddOwnershipError);
  const Bdd g = fa | a.var(1);  // the failed call must not corrupt anything
  EXPECT_FALSE(g.is_const());
  EXPECT_TRUE(a.audit().empty());
}

}  // namespace
}  // namespace bidec
