// Cell libraries and technology mapping: parsing, recipe synthesis for
// missing gates, cost accounting, functional preservation.
#include "netlist/library.h"

#include <gtest/gtest.h>

#include <random>

#include "baseline/sis_like.h"
#include "benchgen/benchgen.h"
#include "bidec/bidecomposer.h"
#include "tt/truth_table.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

Netlist all_gates_netlist() {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  const SignalId x = net.add_xor(a, b);
  const SignalId y = net.add_gate(GateType::kNand, x, c);
  const SignalId z = net.add_gate(GateType::kNor, a, net.add_not(c));
  net.add_output("o1", net.add_or(y, z));
  net.add_output("o2", net.add_gate(GateType::kXnor, b, c));
  return net;
}

TEST(Library, PaperDefaultMatchesCostTable) {
  const CellLibrary lib = CellLibrary::paper_default();
  EXPECT_DOUBLE_EQ(lib.best_cell(GateType::kXor)->area, 5.0);
  EXPECT_DOUBLE_EQ(lib.best_cell(GateType::kNor)->area, 2.0);
  EXPECT_DOUBLE_EQ(lib.best_cell(GateType::kXor)->delay, 2.1);
  EXPECT_DOUBLE_EQ(lib.best_cell(GateType::kNot)->delay, 0.5);
  EXPECT_TRUE(lib.has(GateType::kAnd));
  EXPECT_FALSE(lib.has(GateType::kBuf));
}

TEST(Library, ParseRoundTrip) {
  const char* text =
      "# two-cell library\n"
      "GATE inv1 0.9 0.4 inv\n"
      "GATE nd2 1.8 0.9 nand2\n";
  const CellLibrary lib = CellLibrary::parse_string(text);
  ASSERT_EQ(lib.cells().size(), 2u);
  EXPECT_EQ(lib.cells()[0].name, "inv1");
  EXPECT_EQ(lib.cells()[1].function, GateType::kNand);
  const CellLibrary again = CellLibrary::parse_string(lib.to_string());
  EXPECT_EQ(again.cells().size(), 2u);
}

TEST(Library, ParseErrors) {
  EXPECT_THROW((void)CellLibrary::parse_string("CELL x 1 1 inv\n"), std::runtime_error);
  EXPECT_THROW((void)CellLibrary::parse_string("GATE x 1 1 mux4\n"), std::runtime_error);
  EXPECT_THROW((void)CellLibrary::parse_string("GATE x 1\n"), std::runtime_error);
  EXPECT_THROW((void)CellLibrary::parse_string("# only comments\n"), std::runtime_error);
}

TEST(Library, BestCellPrefersCheapest) {
  CellLibrary lib;
  lib.add_cell({"big_inv", GateType::kNot, 2.0, 0.3});
  lib.add_cell({"small_inv", GateType::kNot, 1.0, 0.6});
  EXPECT_EQ(lib.best_cell(GateType::kNot)->name, "small_inv");
}

TEST(Mapping, IdentityUnderFullLibrary) {
  const Netlist net = all_gates_netlist();
  const Netlist mapped = map_to_library(net, CellLibrary::paper_default());
  BddManager mgr(3);
  EXPECT_TRUE(verify_equivalent(mgr, net, mapped).ok);
  // Full library: stats computable directly.
  const MappedStats s = library_stats(mapped, CellLibrary::paper_default());
  EXPECT_GT(s.cells, 0u);
  EXPECT_GT(s.area, 0.0);
}

TEST(Mapping, NandInvOnly) {
  const Netlist net = all_gates_netlist();
  const CellLibrary lib = CellLibrary::nand_inv();
  const Netlist mapped = map_to_library(net, lib);
  BddManager mgr(3);
  EXPECT_TRUE(verify_equivalent(mgr, net, mapped).ok);
  // Only NAND and INV nodes appear.
  for (const SignalId id : mapped.reachable_topo_order()) {
    const GateType t = mapped.node(id).type;
    EXPECT_TRUE(t == GateType::kInput || t == GateType::kConst0 ||
                t == GateType::kConst1 || t == GateType::kNot ||
                t == GateType::kNand)
        << gate_name(t);
  }
  // And the library can cost it.
  EXPECT_NO_THROW((void)library_stats(mapped, lib));
}

TEST(Mapping, NorInvOnly) {
  CellLibrary lib;
  lib.add_cell({"inv", GateType::kNot, 1.0, 0.5});
  lib.add_cell({"nor2", GateType::kNor, 2.0, 1.0});
  const Netlist net = all_gates_netlist();
  const Netlist mapped = map_to_library(net, lib);
  BddManager mgr(3);
  EXPECT_TRUE(verify_equivalent(mgr, net, mapped).ok);
  for (const SignalId id : mapped.reachable_topo_order()) {
    const GateType t = mapped.node(id).type;
    EXPECT_TRUE(t == GateType::kInput || t == GateType::kConst0 ||
                t == GateType::kConst1 || t == GateType::kNot || t == GateType::kNor)
        << gate_name(t);
  }
}

TEST(Mapping, RandomNetlistsStayEquivalent) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    BddManager mgr(6);
    const TruthTable t = TruthTable::random(6, rng);
    const Isf spec = Isf::from_csf(t.to_bdd(mgr));
    BiDecomposer dec(mgr);
    dec.add_output("f", spec);
    dec.finish();
    for (const CellLibrary& lib :
         {CellLibrary::paper_default(), CellLibrary::nand_inv()}) {
      const Netlist mapped = map_to_library(dec.netlist(), lib);
      const std::vector<Isf> outputs{spec};
      EXPECT_TRUE(verify_against_isfs(mgr, mapped, outputs).ok) << trial;
    }
  }
}

TEST(Mapping, IncompleteLibraryRejected) {
  CellLibrary no_inv;
  no_inv.add_cell({"and2", GateType::kAnd, 3.0, 1.2});
  CellLibrary inv_only;
  inv_only.add_cell({"inv", GateType::kNot, 1.0, 0.5});
  const Netlist net = all_gates_netlist();
  EXPECT_THROW((void)map_to_library(net, no_inv), std::invalid_argument);
  EXPECT_THROW((void)map_to_library(net, inv_only), std::invalid_argument);
}

TEST(Mapping, StatsRejectForeignGates) {
  const Netlist net = all_gates_netlist();  // contains XOR
  EXPECT_THROW((void)library_stats(net, CellLibrary::nand_inv()), std::invalid_argument);
}

TEST(Mapping, XorCostReflectsLibrary) {
  // The same decomposed netlist costs more in a NAND/INV library, because
  // every EXOR gate becomes a multi-cell recipe -- the effect behind the
  // paper's remark that EXOR pays off only when the library prices it well.
  const Benchmark& bench = find_benchmark("9sym");
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  BiDecomposer dec(mgr, {}, bench.input_names());
  dec.add_output("f", spec[0]);
  dec.finish();
  const Netlist rich = map_to_library(dec.netlist(), CellLibrary::paper_default());
  const Netlist poor = map_to_library(dec.netlist(), CellLibrary::nand_inv());
  const double rich_area = library_stats(rich, CellLibrary::paper_default()).area;
  const double poor_area = library_stats(poor, CellLibrary::nand_inv()).area;
  EXPECT_GT(poor_area, rich_area * 0.9);
  EXPECT_TRUE(verify_against_isfs(mgr, poor, spec).ok);
}

}  // namespace
}  // namespace bidec
