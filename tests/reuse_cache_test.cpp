// Component-reuse cache (Section 6 / Theorem 6).
#include "bidec/reuse_cache.h"

#include <gtest/gtest.h>

namespace bidec {
namespace {

TEST(ReuseCache, MissOnEmptyCache) {
  BddManager mgr(4);
  ReuseCache cache(mgr);
  const Isf isf = Isf::from_csf(mgr.var(0) & mgr.var(1));
  EXPECT_FALSE(cache.lookup(isf, isf.support()).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ReuseCache, ExactFunctionHit) {
  BddManager mgr(4);
  ReuseCache cache(mgr);
  const Bdd f = mgr.var(0) & mgr.var(1);
  cache.insert(f, 42);
  const Isf isf = Isf::from_csf(f);
  const auto hit = cache.lookup(isf, isf.support());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->signal, 42u);
  EXPECT_FALSE(hit->complemented);
  EXPECT_EQ(hit->func, f);
}

TEST(ReuseCache, IntervalCompatibleHit) {
  BddManager mgr(4);
  ReuseCache cache(mgr);
  const Bdd f = mgr.var(0) | mgr.var(1);  // cached component
  cache.insert(f, 7);
  // An ISF with don't-cares that f satisfies: Q = x0, R = ~x0 & ~x1.
  const Isf isf(mgr.var(0), ~mgr.var(0) & ~mgr.var(1));
  const auto hit = cache.lookup(isf, isf.support());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->signal, 7u);
  EXPECT_TRUE(isf.is_compatible(hit->func));
}

TEST(ReuseCache, ComplementHit) {
  BddManager mgr(4);
  ReuseCache cache(mgr);
  const Bdd f = mgr.var(0) & mgr.var(1);
  cache.insert(f, 9);
  const Isf isf = Isf::from_csf(~f);
  const auto hit = cache.lookup(isf, isf.support());
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->complemented);
  EXPECT_EQ(hit->func, ~f);
  EXPECT_EQ(hit->signal, 9u);
}

TEST(ReuseCache, SupportMismatchMisses) {
  BddManager mgr(4);
  ReuseCache cache(mgr);
  cache.insert(mgr.var(0) & mgr.var(1), 1);
  // Same shape over different variables: different support bucket.
  const Isf isf = Isf::from_csf(mgr.var(2) & mgr.var(3));
  EXPECT_FALSE(cache.lookup(isf, isf.support()).has_value());
}

TEST(ReuseCache, DuplicateInsertIsIdempotent) {
  BddManager mgr(3);
  ReuseCache cache(mgr);
  const Bdd f = mgr.var(0) ^ mgr.var(1);
  cache.insert(f, 1);
  cache.insert(f, 2);  // same function: kept once (first signal wins)
  EXPECT_EQ(cache.size(), 1u);
  const Isf isf = Isf::from_csf(f);
  EXPECT_EQ(cache.lookup(isf, isf.support())->signal, 1u);
}

TEST(ReuseCache, MultipleFunctionsSameSupport) {
  BddManager mgr(3);
  ReuseCache cache(mgr);
  cache.insert(mgr.var(0) & mgr.var(1), 1);
  cache.insert(mgr.var(0) | mgr.var(1), 2);
  cache.insert(mgr.var(0) ^ mgr.var(1), 3);
  EXPECT_EQ(cache.size(), 3u);
  const Isf want_or = Isf::from_csf(mgr.var(0) | mgr.var(1));
  EXPECT_EQ(cache.lookup(want_or, want_or.support())->signal, 2u);
  const Isf want_xor = Isf::from_csf(mgr.var(0) ^ mgr.var(1));
  EXPECT_EQ(cache.lookup(want_xor, want_xor.support())->signal, 3u);
}

TEST(ReuseCache, SurvivesGarbageCollection) {
  BddManager mgr(6);
  ReuseCache cache(mgr);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | mgr.var(2);
  cache.insert(f, 5);
  // Churn the manager to force a collection.
  for (int i = 0; i < 500; ++i) {
    (void)(mgr.var(i % 6) ^ mgr.var((i + 1) % 6) ^ mgr.var((i + 2) % 6));
  }
  mgr.collect_garbage();
  const Isf isf = Isf::from_csf(f);
  const auto hit = cache.lookup(isf, isf.support());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->signal, 5u);
}

}  // namespace
}  // namespace bidec
