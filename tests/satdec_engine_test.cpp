// Batch-engine integration of the SAT engine: engine=sat jobs finish kOk
// with SAT counters in the report, the kSatRescue rung rescues node-budget
// trips (real and injected) ahead of forced Shannon under engine=auto, and
// SAT-touched stable reports stay byte-identical across worker counts.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "engine/batch_engine.h"
#include "fault/fault.h"

namespace bidec {
namespace {

namespace fs = std::filesystem;

std::string corpus(const char* name) {
#ifdef BIDEC_CORPUS_DIR
  return (fs::path(BIDEC_CORPUS_DIR) / name).string();
#else
  return (fs::path("tests/corpus") / name).string();
#endif
}

JobSpec sat_job(const char* file, EngineSelect engine = EngineSelect::kSat) {
  JobSpec spec;
  spec.source = corpus(file);
  spec.flow.engine = engine;
  spec.verify = VerifyEngine::kBoth;
  return spec;
}

BatchOutcome run_one(JobSpec spec, FaultPlan plan = {}) {
  EngineOptions opts;
  opts.num_workers = 1;
  opts.degrade = spec.degrade;
  opts.fault = std::move(plan);
  BatchEngine engine(std::move(opts));
  engine.submit(std::move(spec));
  return engine.run();
}

TEST(SatdecEngine, SatJobsFinishOkWithSolverCounters) {
  for (const char* file : {"add2.pla", "dc_heavy.pla", "xor4.pla",
                           "exor_shared.pla", "interval.pla"}) {
    SCOPED_TRACE(file);
    const BatchOutcome out = run_one(sat_job(file));
    const JobReport& rep = out.results.front().report;
    ASSERT_EQ(rep.status, JobStatus::kOk) << rep.error;
    EXPECT_TRUE(rep.sat_engine);
    EXPECT_GT(rep.satdec.solves, 0u);
    EXPECT_EQ(rep.bdd_verdict, 1);
    EXPECT_EQ(rep.sat_verdict, 1);
    EXPECT_GT(rep.gates, 0u);
    // The stable JSON must carry the sat_engine block for SAT jobs...
    const std::string json = rep.to_stable_json();
    EXPECT_NE(json.find("\"sat_engine\""), std::string::npos);
    EXPECT_NE(json.find("\"solver\""), std::string::npos);
  }
}

TEST(SatdecEngine, BddJobsKeepSatFreeReports) {
  const BatchOutcome out = run_one(sat_job("add2.pla", EngineSelect::kBdd));
  const JobReport& rep = out.results.front().report;
  ASSERT_EQ(rep.status, JobStatus::kOk) << rep.error;
  EXPECT_FALSE(rep.sat_engine);
  EXPECT_EQ(rep.to_stable_json().find("\"sat_engine\""), std::string::npos);
}

TEST(SatdecEngine, BlifSourceThroughSatEngine) {
  for (const char* file : {"chain.blif", "tree.blif"}) {
    SCOPED_TRACE(file);
    const BatchOutcome out = run_one(sat_job(file));
    const JobReport& rep = out.results.front().report;
    ASSERT_EQ(rep.status, JobStatus::kOk) << rep.error;
    EXPECT_TRUE(rep.sat_engine);
    EXPECT_EQ(rep.sat_verdict, 1);
  }
}

// The tentpole acceptance at engine level: an injected node-budget trip with
// engine=auto walks the ladder into the kSatRescue rung, which succeeds —
// the job ends kDegraded with a "sat" step in the trail and both verifiers
// green, without ever reaching forced Shannon.
TEST(SatdecEngine, AutoEngineSatRungRescuesInjectedNodeBudgetTrip) {
  JobSpec spec = sat_job("gc_spike.pla", EngineSelect::kAuto);
  spec.degrade = true;
  spec.max_retries = 3;
  FaultPlan plan;
  // Trip every BDD attempt: only the BDD-free SAT rung can finish.
  plan.add({FaultPoint::kNodeBudgetTrip, /*at=*/500, 1.0, -1, -1, /*times=*/0});
  const BatchOutcome out = run_one(std::move(spec), std::move(plan));
  const JobReport& rep = out.results.front().report;
  ASSERT_EQ(rep.status, JobStatus::kDegraded) << rep.error;
  ASSERT_FALSE(rep.degradation.empty());
  EXPECT_EQ(rep.degradation.back().rung, DegradeRung::kSatRescue);
  EXPECT_TRUE(rep.degradation.back().success);
  EXPECT_TRUE(rep.sat_engine);
  EXPECT_EQ(rep.bdd_verdict, 1);
  EXPECT_EQ(rep.sat_verdict, 1);
  EXPECT_GT(rep.gates, 0u);
}

// A *real* (uninjected) node starvation: the same cap that kills the job
// without degrade is rescued by the SAT rung before the Shannon one.
TEST(SatdecEngine, AutoEngineRescuesRealNodeStarvation) {
  JobSpec dead = sat_job("gc_spike.pla", EngineSelect::kAuto);
  dead.degrade = false;
  dead.node_budget = 3000;
  const BatchOutcome lost = run_one(std::move(dead));
  EXPECT_EQ(lost.results.front().report.status, JobStatus::kTimeout);

  // max_retries=2 gives the ladder a slot for the SAT rung ahead of the
  // final Shannon attempt (with a single retry, Shannon — the guaranteed-
  // progress rung — rightly keeps the last slot).
  JobSpec spec = sat_job("gc_spike.pla", EngineSelect::kAuto);
  spec.degrade = true;
  spec.max_retries = 2;
  spec.node_budget = 3000;
  const BatchOutcome out = run_one(std::move(spec));
  const JobReport& rep = out.results.front().report;
  ASSERT_EQ(rep.status, JobStatus::kDegraded) << rep.error;
  ASSERT_FALSE(rep.degradation.empty());
  EXPECT_EQ(rep.degradation.back().rung, DegradeRung::kSatRescue);
  EXPECT_TRUE(rep.sat_engine);
  EXPECT_EQ(rep.bdd_verdict, 1);
  EXPECT_EQ(rep.sat_verdict, 1);
}

TEST(SatdecEngine, BddEngineLadderStillEndsAtShannon) {
  // engine=bdd keeps the pre-satdec ladder: the last rung is Shannon, and no
  // SAT rung appears in the trail.
  JobSpec spec = sat_job("gc_spike.pla", EngineSelect::kBdd);
  spec.degrade = true;
  spec.max_retries = 3;
  FaultPlan plan;
  plan.add({FaultPoint::kNodeBudgetTrip, /*at=*/500, 1.0, -1, -1, /*times=*/3});
  const BatchOutcome out = run_one(std::move(spec), std::move(plan));
  const JobReport& rep = out.results.front().report;
  ASSERT_EQ(rep.status, JobStatus::kDegraded) << rep.error;
  for (const DegradeStep& step : rep.degradation) {
    EXPECT_NE(step.rung, DegradeRung::kSatRescue);
  }
  EXPECT_FALSE(rep.sat_engine);
}

TEST(SatdecEngine, StableJsonByteIdenticalAcrossWorkerCounts) {
  const auto run_batch = [&](unsigned workers) {
    EngineOptions opts;
    opts.num_workers = workers;
    opts.degrade = true;
    BatchEngine engine(std::move(opts));
    const char* files[] = {"add2.pla", "dc_heavy.pla", "xor4.pla",
                           "exor_shared.pla", "chain.blif", "interval.pla"};
    for (const char* f : files) {
      JobSpec spec = sat_job(f);
      spec.max_retries = 1;
      engine.submit(std::move(spec));
    }
    const BatchOutcome out = engine.run();
    std::string all;
    for (const JobResult& r : out.results) {
      all += r.report.to_stable_json();
      all += '\n';
    }
    return all;
  };

  const std::string baseline = run_batch(1);
  EXPECT_NE(baseline.find("\"sat_engine\""), std::string::npos);
  EXPECT_EQ(run_batch(1), baseline) << "-j1 repeat";
  for (int run = 0; run < 2; ++run) {
    EXPECT_EQ(run_batch(4), baseline) << "-j4 repeat " << run;
  }
}

}  // namespace
}  // namespace bidec
