// Batch engine: parallel runs are verifier-equivalent to the sequential
// flow, timeouts cancel individual jobs without stalling the pool, and the
// metrics report is complete and serializable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchgen/benchgen.h"
#include "engine/batch_engine.h"
#include "engine/cli_opts.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

// A deterministic workload of multi-output covers. dc_fraction = 0 keeps the
// specifications completely specified, so *any* correct implementation of a
// given spec computes the same functions and sequential-vs-parallel
// equivalence is meaningful.
std::vector<PlaFile> make_workload(int count) {
  std::vector<PlaFile> plas;
  for (int i = 0; i < count; ++i) {
    plas.push_back(random_control_pla(/*inputs=*/8, /*outputs=*/3, /*cubes=*/18,
                                      /*min_lits=*/2, /*max_lits=*/5,
                                      /*outs_per_cube=*/2, /*dc_fraction=*/0.0,
                                      /*seed=*/100 + i));
  }
  return plas;
}

std::vector<std::string> names(const PlaFile& pla, bool outputs) {
  std::vector<std::string> result;
  if (outputs) {
    for (unsigned o = 0; o < pla.num_outputs; ++o) result.push_back(pla.output_name(o));
  } else {
    for (unsigned i = 0; i < pla.num_inputs; ++i) result.push_back(pla.input_name(i));
  }
  return result;
}

TEST(BatchEngine, FourWorkerBatchMatchesSequentialFlow) {
  constexpr int kJobs = 8;
  const std::vector<PlaFile> plas = make_workload(kJobs);

  // Sequential reference: one fresh manager per spec, plain flow.
  std::vector<Netlist> sequential;
  for (const PlaFile& pla : plas) {
    BddManager mgr(pla.num_inputs);
    const std::vector<Isf> spec = pla.to_isfs(mgr);
    FlowResult flow = synthesize_bidecomp(mgr, spec, names(pla, false),
                                          names(pla, true), FlowOptions{});
    ASSERT_TRUE(verify_against_isfs(mgr, flow.netlist, spec).ok);
    sequential.push_back(std::move(flow.netlist));
  }

  EngineOptions opts;
  opts.num_workers = 4;
  BatchEngine engine(opts);
  for (int i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.name = numbered_name("job", i);
    spec.source = plas[i];
    ASSERT_EQ(engine.submit(std::move(spec)), static_cast<std::size_t>(i));
  }
  const BatchOutcome outcome = engine.run();
  ASSERT_EQ(outcome.results.size(), static_cast<std::size_t>(kJobs));
  EXPECT_EQ(outcome.summary.ok, static_cast<std::size_t>(kJobs));

  for (int i = 0; i < kJobs; ++i) {
    const JobResult& r = outcome.results[i];
    ASSERT_EQ(r.report.status, JobStatus::kOk) << r.report.error;
    EXPECT_EQ(r.report.num_inputs, plas[i].num_inputs);
    EXPECT_EQ(r.report.num_outputs, plas[i].num_outputs);
    EXPECT_GT(r.report.bdd_steps, 0u);
    EXPECT_GT(r.report.peak_nodes, 2u);

    // Per-output verifier equivalence against both the spec and the
    // sequential netlist.
    BddManager mgr(plas[i].num_inputs);
    const std::vector<Isf> spec = plas[i].to_isfs(mgr);
    EXPECT_TRUE(verify_against_isfs(mgr, r.netlist, spec).ok) << "job " << i;
    EXPECT_TRUE(verify_equivalent(mgr, sequential[i], r.netlist).ok) << "job " << i;
  }
}

TEST(BatchEngine, StarvedJobTimesOutWithoutStallingPool) {
  const std::vector<PlaFile> plas = make_workload(5);

  EngineOptions opts;
  opts.num_workers = 2;
  BatchEngine engine(opts);
  std::size_t starved_id = 0;
  for (int i = 0; i < 5; ++i) {
    JobSpec spec;
    spec.name = numbered_name("job", i);
    spec.source = plas[i];
    if (i == 2) {
      spec.step_budget = 16;  // far below what materialization alone needs
      starved_id = engine.submit(std::move(spec));
    } else {
      engine.submit(std::move(spec));
    }
  }
  const BatchOutcome outcome = engine.run();
  ASSERT_EQ(outcome.results.size(), 5u);

  EXPECT_EQ(outcome.results[starved_id].report.status, JobStatus::kTimeout);
  for (std::size_t i = 0; i < outcome.results.size(); ++i) {
    if (i == starved_id) continue;
    EXPECT_EQ(outcome.results[i].report.status, JobStatus::kOk)
        << outcome.results[i].report.error;
  }
  EXPECT_EQ(outcome.summary.timeouts, 1u);
  EXPECT_EQ(outcome.summary.ok, 4u);
}

TEST(BatchEngine, DeadlineAlsoCancels) {
  // An already-expired deadline must cancel the job the same way a starved
  // step budget does (the deadline check path instead of the budget path).
  PlaFile pla = random_control_pla(12, 4, 40, 3, 7, 2, 0.0, 7);
  EngineOptions opts;
  opts.num_workers = 1;
  BatchEngine engine(opts);
  JobSpec spec;
  spec.name = "deadline";
  spec.source = std::move(pla);
  spec.timeout_ms = 1;  // expires long before a 12-input synthesis finishes?
  // Not guaranteed: fast machines may finish inside 1 ms. Accept either
  // completion or timeout, but never an error or a hang.
  engine.submit(std::move(spec));
  const BatchOutcome outcome = engine.run();
  const JobStatus st = outcome.results[0].report.status;
  EXPECT_TRUE(st == JobStatus::kOk || st == JobStatus::kTimeout)
      << to_string(st) << " " << outcome.results[0].report.error;
}

TEST(BatchEngine, WorkerManagerReuseKeepsMetricsIsolated) {
  // Two identical jobs on one worker must report identical decomposition
  // metrics: the second job's counters must not include the first's.
  const std::vector<PlaFile> plas = make_workload(1);
  EngineOptions opts;
  opts.num_workers = 1;
  BatchEngine engine(opts);
  for (int i = 0; i < 2; ++i) {
    JobSpec spec;
    spec.name = numbered_name("twin", i);
    spec.source = plas[0];
    engine.submit(std::move(spec));
  }
  const BatchOutcome outcome = engine.run();
  ASSERT_EQ(outcome.results.size(), 2u);
  const JobReport& a = outcome.results[0].report;
  const JobReport& b = outcome.results[1].report;
  ASSERT_EQ(a.status, JobStatus::kOk);
  ASSERT_EQ(b.status, JobStatus::kOk);
  EXPECT_EQ(a.bidec.calls, b.bidec.calls);
  EXPECT_EQ(a.gates, b.gates);
  // Node ids shift slightly after the inter-job GC (ITE normalizes by id),
  // so step counts are only near-identical — but a missing reset would
  // roughly double them.
  EXPECT_GT(b.bdd_steps, a.bdd_steps / 2);
  EXPECT_LT(b.bdd_steps, a.bdd_steps + a.bdd_steps / 2);
}

TEST(BatchEngine, ReportSerializesToJson) {
  const std::vector<PlaFile> plas = make_workload(2);
  EngineOptions opts;
  opts.num_workers = 2;
  BatchEngine engine(opts);
  for (int i = 0; i < 2; ++i) {
    JobSpec spec;
    spec.name = numbered_name("json", i);
    spec.source = plas[i];
    engine.submit(std::move(spec));
  }
  const BatchOutcome outcome = engine.run();
  const std::string json = outcome.summary.to_json();

  // Structural sanity: balanced braces/brackets and the key fields present.
  long depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"job_reports\": ["), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"strong_exor\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  // Kernel cache/GC dynamics must be visible per job.
  EXPECT_NE(json.find("\"cache_hit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_inserts\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_kept\""), std::string::npos);
  EXPECT_NE(json.find("\"gc_ms\""), std::string::npos);

  // The computed cache must actually be earning its keep: across a
  // multi-job batch at least one job sees a non-zero hit rate and inserts.
  bool any_hits = false, any_inserts = false;
  for (const JobResult& r : outcome.results) {
    ASSERT_EQ(r.report.status, JobStatus::kOk);
    any_hits |= r.report.cache_hit_rate > 0.0;
    any_inserts |= r.report.cache_inserts > 0;
  }
  EXPECT_TRUE(any_hits);
  EXPECT_TRUE(any_inserts);
}

TEST(BatchEngine, JsonEscapesPathologicalJobNames) {
  // Job names come from file paths, which can contain anything; the JSON
  // string emitter must escape quotes, backslashes, and every control
  // character (including \b and \f, which have dedicated short escapes).
  JobReport rep;
  rep.name = "evil\"name\\with\nnew\rline\ttab\bbell\fform\x01raw\x1f end";
  const std::string json = rep.to_json();

  EXPECT_NE(json.find("evil\\\"name\\\\with\\nnew\\rline\\ttab\\bbell"
                      "\\fform\\u0001raw\\u001f end"),
            std::string::npos)
      << json;
  // No raw control characters may survive into the output.
  for (const char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  // The result must still be structurally balanced despite the escapes.
  long depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;  // skip the escaped character
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(BatchEngine, SatAndDualEngineVerification) {
  // The same job, verified by each engine selection: all must pass, and the
  // report must show which engines ran and their verdicts.
  const std::vector<PlaFile> plas = make_workload(1);
  for (const VerifyEngine engine :
       {VerifyEngine::kNone, VerifyEngine::kBdd, VerifyEngine::kSat,
        VerifyEngine::kBoth}) {
    BatchEngine batch(EngineOptions{});
    JobSpec spec;
    spec.name = std::string("verify-") + to_string(engine);
    spec.source = plas[0];
    spec.verify = engine;
    batch.submit(std::move(spec));
    const BatchOutcome outcome = batch.run();
    ASSERT_EQ(outcome.results.size(), 1u);
    const JobReport& rep = outcome.results[0].report;
    EXPECT_EQ(rep.status, JobStatus::kOk) << to_string(engine) << ": " << rep.error;
    EXPECT_TRUE(rep.failed_outputs.empty());

    const bool bdd_expected =
        engine == VerifyEngine::kBdd || engine == VerifyEngine::kBoth;
    const bool sat_expected =
        engine == VerifyEngine::kSat || engine == VerifyEngine::kBoth;
    EXPECT_EQ(rep.bdd_verdict, bdd_expected ? 1 : -1) << to_string(engine);
    EXPECT_EQ(rep.sat_verdict, sat_expected ? 1 : -1) << to_string(engine);
    EXPECT_EQ(rep.verify_engine,
              engine == VerifyEngine::kNone ? VerifyEngine::kNone : engine);

    // The verdicts surface in the JSON report.
    const std::string json = rep.to_json();
    EXPECT_NE(json.find(std::string("\"engine\": \"") + to_string(rep.verify_engine) +
                        "\""),
              std::string::npos)
        << json;
  }
}

TEST(BatchEngine, SerialJobKeepsParallelCountersZeroAndJsonClean) {
  // The stable-JSON determinism contract: a default (threads = 1) job must
  // never tick a parallel-kernel counter nor emit the "parallel" block, so
  // serial reports stay byte-identical to the pre-parallel-kernel era.
  const std::vector<PlaFile> plas = make_workload(1);
  BatchEngine engine(EngineOptions{});
  JobSpec spec;
  spec.name = "serial";
  spec.source = plas[0];
  engine.submit(std::move(spec));
  const BatchOutcome outcome = engine.run();
  ASSERT_EQ(outcome.results.size(), 1u);
  const JobReport& rep = outcome.results[0].report;
  ASSERT_EQ(rep.status, JobStatus::kOk) << rep.error;
  EXPECT_EQ(rep.threads, 1u);
  EXPECT_EQ(rep.par_ops, 0u);
  EXPECT_EQ(rep.par_tasks, 0u);
  EXPECT_EQ(rep.par_steals, 0u);
  EXPECT_EQ(rep.par_cache_drops, 0u);
  EXPECT_EQ(rep.par_cas_retries, 0u);
  EXPECT_EQ(rep.to_stable_json().find("\"parallel\""), std::string::npos);
  EXPECT_EQ(rep.to_json().find("\"parallel\""), std::string::npos);
}

TEST(BatchEngine, MultiThreadedJobVerifiesUnderBothEngines) {
  // threads = 8 inside the kernel: the netlist must still verify against
  // the specification under both the BDD and the SAT engine, and the report
  // must carry the parallel block with the thread count.
  const std::vector<PlaFile> plas = make_workload(1);
  BatchEngine engine(EngineOptions{});
  JobSpec spec;
  spec.name = "mt";
  spec.source = plas[0];
  spec.verify = VerifyEngine::kBoth;
  spec.flow.threads = 8;
  engine.submit(std::move(spec));
  const BatchOutcome outcome = engine.run();
  ASSERT_EQ(outcome.results.size(), 1u);
  const JobReport& rep = outcome.results[0].report;
  ASSERT_EQ(rep.status, JobStatus::kOk) << rep.error;
  EXPECT_EQ(rep.bdd_verdict, 1);
  EXPECT_EQ(rep.sat_verdict, 1);
  EXPECT_TRUE(rep.failed_outputs.empty());
  EXPECT_EQ(rep.threads, 8u);
  const std::string stable = rep.to_stable_json();
  EXPECT_NE(stable.find("\"parallel\": {\"threads\": 8"), std::string::npos)
      << stable;

  // The parallel netlist is equivalent to a serial synthesis of the same
  // completely-specified cover.
  BddManager mgr(plas[0].num_inputs);
  const std::vector<Isf> ref_spec = plas[0].to_isfs(mgr);
  EXPECT_TRUE(verify_against_isfs(mgr, outcome.results[0].netlist, ref_spec).ok);
}

TEST(BatchEngine, SubmitRunSubmitRunsAgain) {
  // An engine instance must survive a second submit/run cycle: the first
  // run's drain leaves the queue, worker pool, and id counter in a state
  // the next batch can build on (the server reuses the same machinery for
  // its whole lifetime, so re-entry is load-bearing, not a curiosity).
  const std::vector<PlaFile> plas = make_workload(4);
  EngineOptions opts;
  opts.num_workers = 2;
  BatchEngine engine(opts);

  for (int i = 0; i < 2; ++i) {
    JobSpec spec;
    spec.name = numbered_name("first", i);
    spec.source = plas[i];
    engine.submit(std::move(spec));
  }
  const BatchOutcome first = engine.run();
  ASSERT_EQ(first.results.size(), 2u);
  EXPECT_EQ(first.summary.ok, 2u);

  for (int i = 2; i < 4; ++i) {
    JobSpec spec;
    spec.name = numbered_name("second", i);
    spec.source = plas[i];
    engine.submit(std::move(spec));
  }
  const BatchOutcome second = engine.run();
  ASSERT_EQ(second.results.size(), 2u);
  EXPECT_EQ(second.summary.ok, 2u);
  // The second batch's results verify against their own specs — nothing
  // from the first batch leaked into them.
  for (std::size_t i = 0; i < second.results.size(); ++i) {
    const JobResult& r = second.results[i];
    ASSERT_EQ(r.report.status, JobStatus::kOk) << r.report.error;
    BddManager mgr(plas[2 + i].num_inputs);
    const std::vector<Isf> spec = plas[2 + i].to_isfs(mgr);
    EXPECT_TRUE(verify_against_isfs(mgr, r.netlist, spec).ok) << "job " << i;
  }
  EXPECT_NE(first.results[0].report.name, second.results[0].report.name);
}

TEST(CliOpts, ParseUnsignedIsStrict) {
  EXPECT_EQ(parse_cli_unsigned("0"), 0u);
  EXPECT_EQ(parse_cli_unsigned("42"), 42u);
  EXPECT_EQ(parse_cli_unsigned("18446744073709551615"),
            18446744073709551615ull);
  EXPECT_FALSE(parse_cli_unsigned(nullptr).has_value());
  EXPECT_FALSE(parse_cli_unsigned("").has_value());
  EXPECT_FALSE(parse_cli_unsigned("banana").has_value());
  EXPECT_FALSE(parse_cli_unsigned("12x").has_value());
  EXPECT_FALSE(parse_cli_unsigned("-3").has_value());
  EXPECT_FALSE(parse_cli_unsigned(" 7").has_value());
}

TEST(CliOpts, ZeroWorkersMeansAutoDetect) {
  // `--jobs 0` (and the flag's default) resolve to hardware concurrency,
  // never to a zero-thread pool.
  EXPECT_GE(resolve_worker_count(0), 1u);
  EXPECT_EQ(resolve_worker_count(3), 3u);
  EXPECT_EQ(resolve_worker_count(1), 1u);
  // The job-capped overload never exceeds the batch size but still
  // resolves an empty batch to one worker.
  EXPECT_LE(resolve_worker_count(0, 2), 2u);
  EXPECT_GE(resolve_worker_count(0, 2), 1u);
  EXPECT_EQ(resolve_worker_count(8, 3), 3u);
  EXPECT_EQ(resolve_worker_count(2, 100), 2u);
  EXPECT_EQ(resolve_worker_count(0, 0), 1u);
}

TEST(BatchEngine, MissingFileReportsErrorNotCrash) {
  BatchEngine engine(EngineOptions{});
  JobSpec spec;
  spec.source = std::string("/nonexistent/path/to/file.pla");
  engine.submit(std::move(spec));
  const BatchOutcome outcome = engine.run();
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_EQ(outcome.results[0].report.status, JobStatus::kError);
  EXPECT_FALSE(outcome.results[0].report.error.empty());
  EXPECT_EQ(outcome.summary.errors, 1u);
}

}  // namespace
}  // namespace bidec
