// Reproduction of Table 2 (paper Section 8): BI-DECOMP vs an SIS-like
// two-level + factoring baseline over the MCNC benchmark suite (stand-ins
// flagged with *). Prints the same columns the paper reports: inputs,
// outputs, gates, exors, area, cascades, delay, CPU time, per flow.
//
// Expected shape (not absolute numbers; see EXPERIMENTS.md): BI-DECOMP wins
// on area and delay on most rows, uses EXOR gates where the baseline emits
// none, and both netlists verify against the specification.
#include <cstdio>

#include "common.h"

int main() {
  using namespace bidec;
  using namespace bidec::bench;

  std::printf("Table 2: comparison of decomposition results with the SIS-like baseline\n");
  std::printf("(* = synthetic stand-in benchmark; see DESIGN.md Section 4)\n\n");
  std::printf("%-9s %4s %5s | %6s %6s %8s %5s %7s %8s | %6s %6s %8s %5s %7s %8s | %s\n",
              "name", "ins", "outs", "gates", "exors", "area", "casc", "delay",
              "time,s", "gates", "exors", "area", "casc", "delay", "time,s", "verdict");
  std::printf("%-9s %4s %5s | %45s | %45s |\n", "", "", "", "SIS-like baseline",
              "BI-DECOMP (this work)");
  print_rule(140);

  int bidec_area_wins = 0, bidec_delay_wins = 0, rows = 0;
  bool all_verified = true;
  for (const Benchmark& b : table2_suite()) {
    const FlowResult sis = run_sis_like(b);
    const FlowResult ours = run_bidecomp(b);
    const char* verdict =
        ours.stats.area < sis.stats.area && ours.stats.delay < sis.stats.delay
            ? "bidecomp wins both"
        : ours.stats.area < sis.stats.area ? "bidecomp wins area"
        : ours.stats.delay < sis.stats.delay ? "bidecomp wins delay"
                                             : "baseline wins";
    std::printf("%-8s%s %4u %5u | %6zu %6zu %8.0f %5u %7.1f %8.2f | %6zu %6zu %8.0f %5u %7.1f %8.2f | %s\n",
                b.name.c_str(), b.stand_in ? "*" : " ", b.num_inputs, b.num_outputs,
                sis.stats.gates, sis.stats.exors, sis.stats.area, sis.stats.cascades,
                sis.stats.delay, sis.seconds, ours.stats.gates, ours.stats.exors,
                ours.stats.area, ours.stats.cascades, ours.stats.delay, ours.seconds,
                verdict);
    std::fflush(stdout);
    ++rows;
    if (ours.stats.area < sis.stats.area) ++bidec_area_wins;
    if (ours.stats.delay < sis.stats.delay) ++bidec_delay_wins;
    all_verified &= sis.verified && ours.verified;
  }
  print_rule(140);
  std::printf("BI-DECOMP wins area on %d/%d rows, delay on %d/%d rows; "
              "all netlists verified: %s\n",
              bidec_area_wins, rows, bidec_delay_wins, rows,
              all_verified ? "yes" : "NO");
  std::printf("(paper: BI-DECOMP outperforms SIS in both area and delay in almost all cases)\n");
  return all_verified ? 0 : 1;
}
