// Microbenchmarks of the decomposition primitives: the Theorem 1/2 checks,
// variable grouping, component derivation, the Fig. 4 EXOR procedure and
// full single-output decompositions.
#include <benchmark/benchmark.h>

#include <random>

#include "benchgen/benchgen.h"
#include "bidec/bidecomposer.h"
#include "bidec/check.h"
#include "bidec/derive.h"
#include "bidec/exor_check.h"
#include "bidec/grouping.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

struct Fixture {
  std::unique_ptr<BddManager> mgr;
  Isf isf;
  std::vector<unsigned> support;

  explicit Fixture(unsigned nv, double dc = 0.3, std::uint64_t seed = 1) {
    mgr = std::make_unique<BddManager>(nv);
    std::mt19937_64 rng(seed);
    const TruthTable on = TruthTable::random(nv, rng, 0.5);
    const TruthTable dcs = TruthTable::random(nv, rng, dc);
    isf = Isf((on - dcs).to_bdd(*mgr), ((~on) - dcs).to_bdd(*mgr));
    support = isf.support();
  }
};

void BM_CheckOrDecomposable(benchmark::State& state) {
  Fixture fx(static_cast<unsigned>(state.range(0)));
  const unsigned xa[] = {0}, xb[] = {1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_or_decomposable(fx.isf, xa, xb));
  }
}
BENCHMARK(BM_CheckOrDecomposable)->Arg(8)->Arg(12);

void BM_CheckExor11(benchmark::State& state) {
  Fixture fx(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_exor_decomposable_11(fx.isf, 0, 1));
  }
}
BENCHMARK(BM_CheckExor11)->Arg(8)->Arg(12);

void BM_ExorBidecompFig4(benchmark::State& state) {
  BddManager mgr(10);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 10; ++v) parity ^= mgr.var(v);
  const Isf isf = Isf::from_csf(parity);
  const unsigned xa[] = {0, 1, 2, 3, 4}, xb[] = {5, 6, 7, 8, 9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_exor_bidecomp(isf, xa, xb));
  }
}
BENCHMARK(BM_ExorBidecompFig4);

void BM_GroupVariablesOr(benchmark::State& state) {
  Fixture fx(static_cast<unsigned>(state.range(0)), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group_variables_or(fx.isf, fx.support, {}));
  }
}
BENCHMARK(BM_GroupVariablesOr)->Arg(8)->Arg(10);

void BM_FindBestGrouping(benchmark::State& state) {
  Fixture fx(static_cast<unsigned>(state.range(0)), 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_best_grouping(fx.isf, fx.support, {}));
  }
}
BENCHMARK(BM_FindBestGrouping)->Arg(8)->Arg(10);

void BM_DeriveOrComponents(benchmark::State& state) {
  // A guaranteed OR-decomposable fixture: disjoint-support disjunction with
  // extra shared variables.
  BddManager mgr(10);
  std::mt19937_64 rng(3);
  const TruthTable left = TruthTable::random(5, rng);
  Bdd l = left.to_bdd(mgr);
  Bdd r = mgr.bdd_false();
  for (unsigned v = 5; v < 10; ++v) r |= mgr.var(v) & mgr.var((v + 1 == 10) ? 5 : v + 1);
  const Isf isf = Isf::from_csf(l | r);
  const unsigned xa[] = {0, 1}, xb[] = {6, 7};
  if (!check_or_decomposable(isf, xa, xb)) {
    state.SkipWithError("fixture not OR-decomposable");
    return;
  }
  for (auto _ : state) {
    const Isf a = derive_or_component_a(isf, xa, xb);
    benchmark::DoNotOptimize(derive_or_component_b(isf, a.any_cover(), xa));
  }
}
BENCHMARK(BM_DeriveOrComponents);

void BM_DecomposeRandom(benchmark::State& state) {
  const unsigned nv = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Fixture fx(nv, 0.25, 42);
    state.ResumeTiming();
    BiDecomposer dec(*fx.mgr);
    benchmark::DoNotOptimize(dec.decompose(fx.isf));
  }
}
BENCHMARK(BM_DecomposeRandom)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_Decompose9sym(benchmark::State& state) {
  for (auto _ : state) {
    const Benchmark& b = find_benchmark("9sym");
    BddManager mgr(b.num_inputs);
    const std::vector<Isf> spec = b.build(mgr);
    BiDecomposer dec(mgr);
    benchmark::DoNotOptimize(dec.decompose(spec[0]));
  }
}
BENCHMARK(BM_Decompose9sym)->Unit(benchmark::kMillisecond);

void BM_DecomposeRd84(benchmark::State& state) {
  for (auto _ : state) {
    const Benchmark& b = find_benchmark("rd84");
    BddManager mgr(b.num_inputs);
    const std::vector<Isf> spec = b.build(mgr);
    BiDecomposer dec(mgr);
    for (std::size_t o = 0; o < spec.size(); ++o) {
      dec.add_output(numbered_name("f", o), spec[o]);
    }
    benchmark::DoNotOptimize(dec.netlist().num_nodes());
  }
}
BENCHMARK(BM_DecomposeRd84)->Unit(benchmark::kMillisecond);

void BM_RemoveInessentialVariables(benchmark::State& state) {
  Fixture fx(10, 0.6, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.isf.remove_inessential_variables());
  }
}
BENCHMARK(BM_RemoveInessentialVariables);

}  // namespace
}  // namespace bidec

BENCHMARK_MAIN();
