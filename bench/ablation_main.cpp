// Ablations for the design decisions the paper discusses in prose:
//   Section 6: the component-reuse cache ("up to 20% component reuse")
//   Section 9: EXOR gates pay off on EXOR-intensive circuits
//   Section 7: weak decompositions happen in 20-30% of recursive calls and
//              |X_A| = 1 is the best weak grouping
//   Section 5: the regrouping variant buys <3% area for 2x CPU
//   Section 7: the balance term of the grouping cost function
// Run with --ablation=cache|exor|weak|regroup|balance or no argument for all.
#include <cstdio>
#include <cstring>
#include <string>

#include "bidec/flow.h"
#include "common.h"

namespace {

using namespace bidec;
using namespace bidec::bench;

// A compact sub-suite keeps every ablation under a minute.
std::vector<Benchmark> ablation_suite() {
  std::vector<Benchmark> s;
  for (const char* name : {"9sym", "rd84", "5xp1", "alu2", "t481", "misex2", "pdc"}) {
    s.push_back(find_benchmark(name));
  }
  return s;
}

void ablate_cache() {
  std::printf("\n== Ablation: component-reuse cache (paper Section 6) ==\n");
  std::printf("%-9s | %10s %10s | %10s %10s | %9s %9s\n", "name", "area(on)",
              "area(off)", "time(on)", "time(off)", "reuse", "reuse%%");
  for (const Benchmark& b : ablation_suite()) {
    BidecOptions off;
    off.use_cache = false;
    const bench::FlowResult with_cache = run_bidecomp(b);
    const bench::FlowResult without = run_bidecomp(b, off);
    const std::size_t hits = with_cache.bidec_stats.cache_hits +
                             with_cache.bidec_stats.cache_complement_hits;
    const double pct = with_cache.bidec_stats.cache_lookups == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(hits) /
                                 static_cast<double>(with_cache.bidec_stats.cache_lookups);
    std::printf("%-9s | %10.0f %10.0f | %10.2f %10.2f | %9zu %8.1f%%\n",
                b.name.c_str(), with_cache.stats.area, without.stats.area,
                with_cache.seconds, without.seconds, hits, pct);
    std::fflush(stdout);
  }
  std::printf("(paper: the caching technique achieves up to 20%% component reuse)\n");
}

void ablate_exor() {
  std::printf("\n== Ablation: EXOR gates enabled vs disabled (paper Section 9) ==\n");
  std::printf("%-9s | %8s %8s %7s | %8s %8s %7s\n", "name", "area", "delay",
              "exors", "area", "delay", "exors");
  std::printf("%-9s | %26s | %26s\n", "", "EXOR enabled", "EXOR disabled");
  for (const Benchmark& b : ablation_suite()) {
    BidecOptions no_exor;
    no_exor.use_exor = false;
    const bench::FlowResult with_exor = run_bidecomp(b);
    const bench::FlowResult without = run_bidecomp(b, no_exor);
    std::printf("%-9s | %8.0f %8.1f %7zu | %8.0f %8.1f %7zu\n", b.name.c_str(),
                with_exor.stats.area, with_exor.stats.delay, with_exor.stats.exors,
                without.stats.area, without.stats.delay, without.stats.exors);
    std::fflush(stdout);
  }
  std::printf("(expected: EXOR-intensive rows -- 9sym, rd84, t481 -- degrade without EXOR)\n");
}

void ablate_weak() {
  std::printf("\n== Ablation: weak grouping |X_A| sweep + call statistics (Section 7) ==\n");
  std::printf("%-9s | %8s %8s %8s | %7s %7s %9s\n", "name", "area(1)", "area(2)",
              "area(3)", "strong", "weak", "weak-frac");
  for (const Benchmark& b : ablation_suite()) {
    bench::FlowResult r[3];
    for (unsigned k = 1; k <= 3; ++k) {
      BidecOptions opt;
      opt.weak_xa_size = k;
      r[k - 1] = run_bidecomp(b, opt);
    }
    const BidecStats& s = r[0].bidec_stats;
    const double frac = s.strong_total() + s.weak_total() == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(s.weak_total()) /
                                  static_cast<double>(s.strong_total() + s.weak_total());
    std::printf("%-9s | %8.0f %8.0f %8.0f | %7zu %7zu %8.1f%%\n", b.name.c_str(),
                r[0].stats.area, r[1].stats.area, r[2].stats.area, s.strong_total(),
                s.weak_total(), frac);
    std::fflush(stdout);
  }
  std::printf("(paper: best results with |X_A| = 1; weak calls in 20-30%% of recursions)\n");
}

void ablate_regroup() {
  std::printf("\n== Ablation: Section 5 regrouping variant (reject-one-to-add-two) ==\n");
  std::printf("%-9s | %8s %8s | %8s %8s\n", "name", "area", "time", "area", "time");
  std::printf("%-9s | %17s | %17s\n", "", "greedy (default)", "with regrouping");
  for (const Benchmark& b : ablation_suite()) {
    BidecOptions regroup;
    regroup.regroup = true;
    const bench::FlowResult plain = run_bidecomp(b);
    const bench::FlowResult with = run_bidecomp(b, regroup);
    std::printf("%-9s | %8.0f %8.2f | %8.0f %8.2f\n", b.name.c_str(),
                plain.stats.area, plain.seconds, with.stats.area, with.seconds);
    std::fflush(stdout);
  }
  std::printf("(paper: the variant improved area <3%% while doubling CPU time)\n");
}

void ablate_balance() {
  std::printf("\n== Ablation: balance term of the grouping cost function (Section 7) ==\n");
  std::printf("%-9s | %8s %8s | %8s %8s\n", "name", "casc", "delay", "casc", "delay");
  std::printf("%-9s | %17s | %17s\n", "", "balanced (default)", "size-only");
  for (const Benchmark& b : ablation_suite()) {
    BidecOptions unbalanced;
    unbalanced.balance_cost = false;
    const bench::FlowResult bal = run_bidecomp(b);
    const bench::FlowResult unbal = run_bidecomp(b, unbalanced);
    std::printf("%-9s | %8u %8.1f | %8u %8.1f\n", b.name.c_str(), bal.stats.cascades,
                bal.stats.delay, unbal.stats.cascades, unbal.stats.delay);
    std::fflush(stdout);
  }
  std::printf("(paper: balanced variable sets lead to well-balanced, short-delay netlists)\n");
}

void ablate_grouping_pairs() {
  std::printf("\n== Ablation: initial-grouping effort (grown pairs per search) ==\n");
  std::printf("(the paper's Fig. 5 grows only the first decomposable pair = column 1)\n");
  std::printf("%-9s | %8s %8s %8s %8s | %8s %8s\n", "name", "area(1)", "area(2)",
              "area(4)", "area(8)", "time(1)", "time(8)");
  for (const Benchmark& b : ablation_suite()) {
    double area[4] = {0, 0, 0, 0};
    double t1 = 0, t8 = 0;
    const unsigned settings[4] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
      BidecOptions opt;
      opt.grouping_pairs = settings[i];
      const auto r = run_bidecomp(b, opt);
      area[i] = r.stats.area;
      if (i == 0) t1 = r.seconds;
      if (i == 3) t8 = r.seconds;
    }
    std::printf("%-9s | %8.0f %8.0f %8.0f %8.0f | %8.2f %8.2f\n", b.name.c_str(),
                area[0], area[1], area[2], area[3], t1, t8);
    std::fflush(stdout);
  }
}

void ablate_random_pla() {
  std::printf("\n== Boundary case: structure-free random-cube PLAs ==\n");
  std::printf("(sparse random covers are the adversarial best case for two-level\n"
              " synthesis: decomposition finds no structure to exploit, so the\n"
              " SIS-like baseline is expected to WIN here; see EXPERIMENTS.md)\n");
  std::printf("%-22s | %8s %8s | %8s %8s\n", "workload", "area", "delay", "area",
              "delay");
  std::printf("%-22s | %17s | %17s\n", "", "SIS-like", "BI-DECOMP");
  const struct {
    const char* name;
    unsigned in, out, cubes, min_lits, max_lits, opc;
    std::uint64_t seed;
  } workloads[] = {
      {"randpla-16x8-60", 16, 8, 60, 3, 8, 3, 0xabc1},
      {"randpla-20x12-90", 20, 12, 90, 4, 9, 3, 0xabc2},
      {"randpla-24x16-120", 24, 16, 120, 5, 10, 4, 0xabc3},
  };
  for (const auto& w : workloads) {
    Benchmark b;
    b.name = w.name;
    b.num_inputs = w.in;
    b.num_outputs = w.out;
    b.stand_in = true;
    b.pla = std::make_shared<PlaFile>(random_control_pla(
        w.in, w.out, w.cubes, w.min_lits, w.max_lits, w.opc, 0.0, w.seed));
    b.build = [pla = b.pla](BddManager& mgr) { return pla->to_isfs(mgr); };
    const auto base = run_sis_like(b);
    const auto ours = run_bidecomp(b);
    std::printf("%-22s | %8.0f %8.1f | %8.0f %8.1f\n", w.name, base.stats.area,
                base.stats.delay, ours.stats.area, ours.stats.delay);
    std::fflush(stdout);
  }
}

void ablate_reorder() {
  std::printf("\n== Ablation: static variable reordering before decomposition ==\n");
  std::printf("%-9s | %10s %10s %10s | %8s %8s\n", "name", "bdd(id)", "bdd(force)",
              "bdd(sift)", "time(id)", "time(sift)");
  for (const char* name : {"alu2", "5xp1", "cordic", "misex2"}) {
    const Benchmark& b = find_benchmark(name);
    std::size_t nodes[3] = {0, 0, 0};
    double time_id = 0, time_sift = 0;
    const OrderHeuristic hs[3] = {OrderHeuristic::kNone, OrderHeuristic::kForce,
                                  OrderHeuristic::kSift};
    for (int i = 0; i < 3; ++i) {
      BddManager mgr(b.num_inputs);
      const std::vector<Isf> spec = b.build(mgr);
      FlowOptions options;
      options.reorder = hs[i];
      const Timer timer;
      const bidec::FlowResult res =
          synthesize_bidecomp(mgr, spec, b.input_names(), b.output_names(), options);
      const double seconds = timer.seconds();
      nodes[i] = res.bdd_nodes_after;
      if (i == 0) time_id = seconds;
      if (i == 2) time_sift = seconds;
    }
    std::printf("%-9s | %10zu %10zu %10zu | %8.2f %8.2f\n", name, nodes[0], nodes[1],
                nodes[2], time_id, time_sift);
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = "all";
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--ablation=", 11) == 0) which = arg + 11;
  }
  if (which == "all" || which == "cache") ablate_cache();
  if (which == "all" || which == "exor") ablate_exor();
  if (which == "all" || which == "weak") ablate_weak();
  if (which == "all" || which == "regroup") ablate_regroup();
  if (which == "all" || which == "balance") ablate_balance();
  if (which == "all" || which == "pairs") ablate_grouping_pairs();
  if (which == "all" || which == "randompla") ablate_random_pla();
  if (which == "all" || which == "reorder") ablate_reorder();
  return 0;
}
