// Server-mode throughput gate: an in-process BidecServer hammered by real
// loopback-socket clients, cold cross-job cache vs warm. Like perf_gate,
// this runs a *fixed protocol* — pinned workload seeds, a fixed client
// count and job mix, median-of-reps — and emits BENCH_server.json in the
// schema bench/compare_perf.py diffs against the checked-in baseline.
//
// Two phases per repetition, identical job stream, identical warm-up:
//   cold: ServerOptions::shared_cache = false — every job decomposes from
//         scratch (the manager pool is still warm, so the measured delta
//         is the component cache, not pool hygiene);
//   warm: shared cache on and primed with one pass over the distinct
//         specs, so the measured stream runs against a hot cache.
//
// Every response is checked: status must be "ok" and the BDD verifier
// verdict 1 — a reuse hit that ships a wrong netlist fails the bench, not
// just the numbers. --min-warm-speedup S (default 1.5) additionally fails
// the run when warm throughput does not beat cold by the factor the server
// mode promises; 0 disables the self-gate for exploratory runs.
//
// Usage:
//   micro_server [--quick] [--clients N] [--jobs-per-client N] [--reps N]
//                [--workers N] [--out-dir DIR] [--commit HASH]
//                [--min-warm-speedup S]
#include <algorithm>
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/benchgen.h"
#include "server/json.h"
#include "server/server.h"

namespace bidec::srvbench {
namespace {

using Clock = std::chrono::steady_clock;

// --- minimal blocking line client (mirrors examples/bidec_client) --------

class LineClient {
 public:
  explicit LineClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  bool send_line(const std::string& s) {
    std::string line = s;
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n =
          ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::optional<std::string> recv_line() {
    while (true) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char tmp[8192];
      const ssize_t n = ::recv(fd_, tmp, sizeof tmp, 0);
      if (n <= 0) return std::nullopt;
      buf_.append(tmp, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

// --- fixed workload ------------------------------------------------------

/// Pinned-seed request lines: `distinct` different covers, serialized once.
std::vector<std::string> make_request_pool(unsigned distinct) {
  std::vector<std::string> pool;
  for (unsigned s = 0; s < distinct; ++s) {
    const PlaFile pla =
        random_control_pla(/*inputs=*/10, /*outputs=*/3, /*cubes=*/28,
                           /*min_lits=*/3, /*max_lits=*/6, /*outs_per_cube=*/2,
                           /*dc_fraction=*/0.0, /*seed=*/1000 + s);
    pool.push_back("\"pla\": \"" + json_escape(pla.write()) +
                   "\", \"name\": \"bench" + std::to_string(s) + "\"");
  }
  return pool;
}

std::string request_line(std::uint64_t id, const std::string& pooled_spec) {
  return "{\"op\": \"synth\", \"id\": " + std::to_string(id) + ", " +
         pooled_spec + ", \"verify\": \"bdd\"}";
}

// --- one measured phase --------------------------------------------------

struct PhaseResult {
  double wall_ms = 0.0;
  std::vector<double> latencies_ms;  ///< closed-loop per-request latency
  std::uint64_t jobs = 0;
  std::uint64_t failures = 0;  ///< non-ok status or failed verifier verdict
};

/// `clients` closed-loop clients, each sending `jobs_per_client` requests
/// round-robin over the pooled specs and waiting for each answer.
PhaseResult run_phase(std::uint16_t port, unsigned clients,
                      unsigned jobs_per_client,
                      const std::vector<std::string>& pool) {
  std::vector<std::thread> threads;
  std::vector<PhaseResult> per_client(clients);
  const auto t0 = Clock::now();
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PhaseResult& mine = per_client[c];
      LineClient client(port);
      if (!client.connected()) {
        mine.failures += jobs_per_client;
        return;
      }
      for (unsigned j = 0; j < jobs_per_client; ++j) {
        const std::string& spec = pool[(c + j) % pool.size()];
        const auto sent = Clock::now();
        if (!client.send_line(request_line(j + 1, spec))) {
          ++mine.failures;
          continue;
        }
        const std::optional<std::string> line = client.recv_line();
        const auto got = Clock::now();
        ++mine.jobs;
        mine.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(got - sent).count());
        if (!line) {
          ++mine.failures;
          continue;
        }
        const std::optional<JsonValue> doc = JsonValue::parse(*line);
        if (!doc || doc->get_string("status") != std::optional<std::string>("ok")) {
          ++mine.failures;
          continue;
        }
        const JsonValue* verify = doc->get("verify");
        if (verify == nullptr || verify->get_uint("bdd") != 1u) ++mine.failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  PhaseResult total;
  total.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  for (const PhaseResult& pc : per_client) {
    total.jobs += pc.jobs;
    total.failures += pc.failures;
    total.latencies_ms.insert(total.latencies_ms.end(), pc.latencies_ms.begin(),
                              pc.latencies_ms.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  return total;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1, static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

/// One server lifecycle: start, one untimed warm-up pass over the distinct
/// specs (heats the manager pool — and the component cache when enabled),
/// the measured phase, stop.
PhaseResult run_server_phase(bool shared_cache, unsigned workers,
                             unsigned clients, unsigned jobs_per_client,
                             const std::vector<std::string>& pool) {
  ServerOptions opts;
  opts.num_workers = workers;
  opts.queue_capacity = 256;
  opts.per_client_inflight = 16;
  opts.shared_cache = shared_cache;
  BidecServer server(opts);
  server.start();

  {
    LineClient prime(server.port());
    for (std::size_t i = 0; i < pool.size() && prime.connected(); ++i) {
      prime.send_line(request_line(900 + i, pool[i]));
      prime.recv_line();
    }
  }

  PhaseResult result = run_phase(server.port(), clients, jobs_per_client, pool);
  server.stop();
  return result;
}

struct BenchRecord {
  std::string name;
  double ns_per_op = 0.0;  ///< median wall ns per completed job
  std::uint64_t ops = 0;
  unsigned reps = 0;
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t failures = 0;
};

void append_json(std::string& out, const BenchRecord& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "    {\"name\": \"%s\", \"ns_per_op\": %.1f, \"ops\": %llu, "
                "\"reps\": %u, \"jobs_per_sec\": %.1f, \"p50_ms\": %.3f, "
                "\"p99_ms\": %.3f, \"failures\": %llu}",
                r.name.c_str(), r.ns_per_op,
                static_cast<unsigned long long>(r.ops), r.reps, r.jobs_per_sec,
                r.p50_ms, r.p99_ms,
                static_cast<unsigned long long>(r.failures));
  out += buf;
}

void write_suite(const std::string& path, const std::string& commit,
                 const std::string& mode, unsigned reps,
                 const std::vector<BenchRecord>& records) {
  std::string out = "{\n";
  out += "  \"schema\": 1,\n";
  out += "  \"suite\": \"server\",\n";
  out += "  \"commit\": \"" + commit + "\",\n";
  out += "  \"mode\": \"" + mode + "\",\n";
  out += "  \"reps\": " + std::to_string(reps) + ",\n";
  out += "  \"benches\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    append_json(out, records[i]);
    if (i + 1 != records.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "micro_server: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << out;
  std::printf("wrote %s (%zu benches)\n", path.c_str(), records.size());
}

BenchRecord fold(const std::string& name, unsigned reps,
                 const std::vector<PhaseResult>& samples) {
  // Median repetition by wall time; ties keep the earlier one so the
  // protocol is deterministic for deterministic workloads.
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return samples[a].wall_ms < samples[b].wall_ms;
  });
  const PhaseResult& med = samples[order[order.size() / 2]];

  BenchRecord rec;
  rec.name = name;
  rec.reps = reps;
  rec.ops = med.jobs;
  if (med.jobs != 0) {
    rec.ns_per_op = med.wall_ms * 1e6 / static_cast<double>(med.jobs);
    rec.jobs_per_sec = static_cast<double>(med.jobs) / (med.wall_ms / 1e3);
  }
  rec.p50_ms = percentile(med.latencies_ms, 0.50);
  rec.p99_ms = percentile(med.latencies_ms, 0.99);
  for (const PhaseResult& s : samples) rec.failures += s.failures;
  return rec;
}

}  // namespace
}  // namespace bidec::srvbench

int main(int argc, char** argv) {
  using namespace bidec;
  using namespace bidec::srvbench;

  unsigned clients = 16;
  unsigned jobs_per_client = 6;
  unsigned reps = 3;
  unsigned workers = 4;
  bool quick = false;
  double min_warm_speedup = 1.5;
  std::string out_dir = ".";
  std::string commit;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
      clients = 8;
      jobs_per_client = 3;
      reps = 1;
    } else if (arg == "--clients" && i + 1 < argc) {
      clients = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--jobs-per-client" && i + 1 < argc) {
      jobs_per_client = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--min-warm-speedup" && i + 1 < argc) {
      min_warm_speedup = std::atof(argv[++i]);
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--commit" && i + 1 < argc) {
      commit = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: micro_server [--quick] [--clients N] "
                   "[--jobs-per-client N] [--reps N] [--workers N] "
                   "[--min-warm-speedup S] [--out-dir DIR] [--commit HASH]\n");
      return 1;
    }
  }
  if (reps == 0) reps = 1;
  if (clients == 0 || jobs_per_client == 0) {
    std::fprintf(stderr, "micro_server: need at least one client and job\n");
    return 1;
  }
  if (commit.empty()) {
    const char* sha = std::getenv("GITHUB_SHA");
    commit = sha != nullptr ? sha : "unknown";
  }
  const std::string mode = quick ? "quick" : "full";

  const std::vector<std::string> pool = make_request_pool(/*distinct=*/4);
  std::vector<PhaseResult> cold_samples, warm_samples;
  for (unsigned r = 0; r < reps; ++r) {
    cold_samples.push_back(
        run_server_phase(false, workers, clients, jobs_per_client, pool));
    warm_samples.push_back(
        run_server_phase(true, workers, clients, jobs_per_client, pool));
  }

  const std::string tag = std::to_string(clients) + "c";
  const BenchRecord cold = fold("server_cold_" + tag, reps, cold_samples);
  const BenchRecord warm = fold("server_warm_" + tag, reps, warm_samples);
  for (const BenchRecord* rec : {&cold, &warm}) {
    std::printf("%-20s %10.1f jobs/s  p50 %7.3f ms  p99 %7.3f ms  "
                "(%llu jobs, %u reps)\n",
                rec->name.c_str(), rec->jobs_per_sec, rec->p50_ms, rec->p99_ms,
                static_cast<unsigned long long>(rec->ops), rec->reps);
  }

  const std::uint64_t expected =
      static_cast<std::uint64_t>(clients) * jobs_per_client;
  if (cold.ops != expected || warm.ops != expected) {
    std::fprintf(stderr, "micro_server: job count mismatch (%llu/%llu vs %llu)\n",
                 static_cast<unsigned long long>(cold.ops),
                 static_cast<unsigned long long>(warm.ops),
                 static_cast<unsigned long long>(expected));
    return 1;
  }
  if (cold.failures != 0 || warm.failures != 0) {
    std::fprintf(stderr,
                 "micro_server: %llu cold / %llu warm verification failures — "
                 "a reused component produced a wrong or unverified result\n",
                 static_cast<unsigned long long>(cold.failures),
                 static_cast<unsigned long long>(warm.failures));
    return 1;
  }

  const double speedup =
      cold.jobs_per_sec > 0.0 ? warm.jobs_per_sec / cold.jobs_per_sec : 0.0;
  std::printf("warm speedup: %.2fx (gate: >= %.2fx)\n", speedup, min_warm_speedup);

  write_suite(out_dir + "/BENCH_server.json", commit, mode, reps, {cold, warm});

  if (min_warm_speedup > 0.0 && speedup < min_warm_speedup) {
    std::fprintf(stderr,
                 "micro_server: warm cache speedup %.2fx below the %.2fx gate\n",
                 speedup, min_warm_speedup);
    return 1;
  }
  return 0;
}
