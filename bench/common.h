// Shared helpers for the table-reproduction harnesses: run each synthesis
// flow on a generated benchmark, collect the Table 2 metric columns, format
// aligned rows.
#ifndef BIDEC_BENCH_COMMON_H
#define BIDEC_BENCH_COMMON_H

#include <chrono>
#include <cstdio>
#include <string>

#include "baseline/bds_like.h"
#include "baseline/sis_like.h"
#include "benchgen/benchgen.h"
#include "bidec/bidecomposer.h"
#include "verify/verifier.h"

namespace bidec::bench {

struct FlowResult {
  NetlistStats stats;
  double seconds = 0.0;
  bool verified = false;
  BidecStats bidec_stats;  // only for the bi-decomposition flow
};

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Our flow (the paper's BI-DECOMP).
inline FlowResult run_bidecomp(const Benchmark& bench, const BidecOptions& options = {}) {
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  const Timer timer;
  BiDecomposer dec(mgr, options, bench.input_names());
  const auto names = bench.output_names();
  for (std::size_t o = 0; o < spec.size(); ++o) dec.add_output(names[o], spec[o]);
  dec.finish();
  FlowResult r;
  r.seconds = timer.seconds();
  r.stats = dec.netlist().stats();
  r.bidec_stats = dec.stats();
  r.verified = verify_against_isfs(mgr, dec.netlist(), spec).ok;
  return r;
}

/// SIS-like baseline (espresso-lite + factoring + 2-input mapping).
inline FlowResult run_sis_like(const Benchmark& bench) {
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  const Timer timer;
  const Netlist net =
      sis_like_synthesize(mgr, spec, bench.input_names(), bench.output_names());
  FlowResult r;
  r.seconds = timer.seconds();
  r.stats = net.stats();
  r.verified = verify_against_isfs(mgr, net, spec).ok;
  return r;
}

/// BDS-like baseline (BDD-structure-driven MUX synthesis).
inline FlowResult run_bds_like(const Benchmark& bench) {
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  const Timer timer;
  const Netlist net =
      bds_like_synthesize(mgr, spec, bench.input_names(), bench.output_names());
  FlowResult r;
  r.seconds = timer.seconds();
  r.stats = net.stats();
  r.verified = verify_against_isfs(mgr, net, spec).ok;
  return r;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bidec::bench

#endif  // BIDEC_BENCH_COMMON_H
