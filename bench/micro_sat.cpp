// Microbenchmarks of the SAT subsystem: raw CDCL search on pigeonhole
// instances, Tseitin encoding throughput, and the miter checks the SAT
// verifier and SAT-ATPG run on Table-2-sized netlists (benchgen stand-ins,
// since the original MCNC files are not redistributable offline).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "atpg/sat_atpg.h"
#include "benchgen/benchgen.h"
#include "bidec/flow.h"
#include "sat/tseitin.h"
#include "verify/sat_verifier.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

using sat::Lit;
using sat::Solver;
using sat::TseitinEncoder;
using sat::Var;

void add_php(Solver& s, unsigned pigeons, unsigned holes) {
  std::vector<std::vector<Var>> p(pigeons);
  for (unsigned i = 0; i < pigeons; ++i) {
    for (unsigned j = 0; j < holes; ++j) p[i].push_back(s.new_var());
  }
  for (unsigned i = 0; i < pigeons; ++i) {
    std::vector<Lit> at_least;
    for (unsigned j = 0; j < holes; ++j) at_least.push_back(sat::mk_lit(p[i][j]));
    s.add_clause(std::move(at_least));
  }
  for (unsigned j = 0; j < holes; ++j) {
    for (unsigned i1 = 0; i1 < pigeons; ++i1) {
      for (unsigned i2 = i1 + 1; i2 < pigeons; ++i2) {
        s.add_clause({sat::mk_lit(p[i1][j], true), sat::mk_lit(p[i2][j], true)});
      }
    }
  }
}

FlowResult synthesize_standin(BddManager& mgr, const StructuredSpecParams& params,
                              const FlowOptions& options = {}) {
  const std::vector<Isf> spec = random_structured_spec(mgr, params);
  std::vector<std::string> in_names, out_names;
  for (unsigned i = 0; i < params.inputs; ++i) in_names.push_back(numbered_name("x", i));
  for (unsigned o = 0; o < params.outputs; ++o) out_names.push_back(numbered_name("y", o));
  return synthesize_bidecomp(mgr, spec, in_names, out_names, options);
}

void report_solver_counters(benchmark::State& state, const Solver::Stats& stats) {
  state.counters["conflicts"] = static_cast<double>(stats.conflicts);
  state.counters["propagations"] = benchmark::Counter(
      static_cast<double>(stats.propagations), benchmark::Counter::kIsRate);
  state.counters["learned"] = static_cast<double>(stats.learned);
}

// CDCL on the unsatisfiable PHP(n+1, n): pure search throughput, no
// encoding involved. Exercises learning, restarts, and clause reduction.
void BM_SatPigeonhole(benchmark::State& state) {
  const unsigned holes = static_cast<unsigned>(state.range(0));
  Solver::Stats last{};
  for (auto _ : state) {
    Solver s;
    add_php(s, holes + 1, holes);
    benchmark::DoNotOptimize(s.solve());
    last = s.stats();
  }
  report_solver_counters(state, last);
}
BENCHMARK(BM_SatPigeonhole)->Arg(5)->Arg(6)->Arg(7);

// Tseitin encoding of a synthesized netlist (clause generation only).
void BM_TseitinEncodeNetlist(benchmark::State& state) {
  StructuredSpecParams params;
  params.inputs = static_cast<unsigned>(state.range(0));
  params.outputs = 8;
  params.internal_nodes = 80;
  params.seed = 5;
  BddManager mgr(params.inputs);
  const FlowResult flow = synthesize_standin(mgr, params);

  for (auto _ : state) {
    Solver s;
    TseitinEncoder enc(s);
    const std::vector<Var> in_vars = enc.add_vars(flow.netlist.num_inputs());
    benchmark::DoNotOptimize(enc.encode_netlist(flow.netlist, in_vars));
  }
  state.counters["gates"] = static_cast<double>(flow.netlist.stats().gates);
}
BENCHMARK(BM_TseitinEncodeNetlist)->Arg(10)->Arg(12)->Arg(16);

// The SAT verifier end to end on a Table-2 stand-in: synthesize once, then
// measure the per-output miter checks against the cover rows.
void BM_SatVerifyAgainstPla(benchmark::State& state) {
  const PlaFile pla = random_control_pla(/*inputs=*/12, /*outputs=*/6, /*cubes=*/40,
                                         /*min_lits=*/2, /*max_lits=*/6,
                                         /*outs_per_cube=*/2, /*dc_fraction=*/0.1,
                                         /*seed=*/7);
  BddManager mgr(pla.num_inputs);
  const std::vector<Isf> spec = pla.to_isfs(mgr);
  std::vector<std::string> in_names, out_names;
  for (unsigned i = 0; i < pla.num_inputs; ++i) in_names.push_back(pla.input_name(i));
  for (unsigned o = 0; o < pla.num_outputs; ++o) out_names.push_back(pla.output_name(o));
  const FlowResult flow = synthesize_bidecomp(mgr, spec, in_names, out_names);

  for (auto _ : state) {
    benchmark::DoNotOptimize(sat_verify_against_pla(flow.netlist, pla));
  }
}
BENCHMARK(BM_SatVerifyAgainstPla);

// Netlist-vs-netlist equivalence miter between two structurally different
// implementations of the same spec (with and without EXOR gates).
void BM_SatEquivalenceMiter(benchmark::State& state) {
  StructuredSpecParams params;
  params.inputs = static_cast<unsigned>(state.range(0));
  params.outputs = 6;
  params.internal_nodes = 60;
  params.xor_fraction = 0.2;
  params.seed = 11;
  BddManager mgr(params.inputs);
  const FlowResult flow = synthesize_standin(mgr, params);
  FlowOptions alt;
  alt.bidec.use_exor = false;
  const FlowResult flow2 = synthesize_standin(mgr, params, alt);

  for (auto _ : state) {
    benchmark::DoNotOptimize(sat_verify_equivalent(flow.netlist, flow2.netlist));
  }
}
BENCHMARK(BM_SatEquivalenceMiter)->Arg(10)->Arg(14);

// Full SAT-ATPG over a decomposed netlist: one incremental solver, one
// assumption-driven solve per stuck-at fault. Dominated by small SAT calls,
// so this measures the incremental-assumption path rather than deep search.
void BM_SatAtpgFullFaultList(benchmark::State& state) {
  StructuredSpecParams params;
  params.inputs = 10;
  params.outputs = 4;
  params.internal_nodes = 50;
  params.seed = 13;
  BddManager mgr(params.inputs);
  const FlowResult flow = synthesize_standin(mgr, params);

  SatAtpgResult last{};
  Solver::Stats stats{};
  for (auto _ : state) {
    SatAtpg atpg(flow.netlist);
    last = {};
    for (const Fault& fault : enumerate_faults(flow.netlist)) {
      const SatFaultResult r = atpg.test_fault(fault);
      ++last.total_faults;
      if (r.cls == FaultClass::kTestable) ++last.testable;
    }
    stats = atpg.solver_stats();
  }
  state.counters["faults"] = static_cast<double>(last.total_faults);
  report_solver_counters(state, stats);
}
BENCHMARK(BM_SatAtpgFullFaultList);

}  // namespace
}  // namespace bidec

BENCHMARK_MAIN();
