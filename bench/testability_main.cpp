// Theorem 5 at benchmark scale: every netlist produced by BI-DECOMP is 100%
// single-stuck-at testable. Runs the full ATPG flow (random fault simulation
// + exact BDD redundancy proof) on the suite and reports coverage; also runs
// the SIS-like baseline for contrast (it carries no testability guarantee,
// though its netlists are usually testable too after minimization).
#include <cstdio>

#include "atpg/atpg.h"
#include "common.h"

int main() {
  using namespace bidec;
  using namespace bidec::bench;

  std::printf("Theorem 5: single-stuck-at testability of BI-DECOMP netlists\n");
  std::printf("(the sweep column applies the redundancy-removal pass -- the paper's\n"
              " future-work ATPG integration -- needed only where EXOR components\n"
              " were derived with don't-cares; see DESIGN.md)\n\n");
  std::printf("%-9s | %7s %9s %9s %10s %9s | %11s\n", "name", "faults", "random",
              "exact", "redundant", "coverage", "after sweep");
  print_rule(85);

  bool all_full = true;
  for (const char* name : {"9sym", "rd84", "5xp1", "alu2", "t481", "misex2"}) {
    const Benchmark& b = find_benchmark(name);
    BddManager mgr(b.num_inputs);
    const std::vector<Isf> spec = b.build(mgr);
    BiDecomposer dec(mgr, {}, b.input_names());
    const auto out_names = b.output_names();
    for (std::size_t o = 0; o < spec.size(); ++o) dec.add_output(out_names[o], spec[o]);
    dec.finish();
    const AtpgResult res = run_atpg(mgr, dec.netlist());
    double swept_coverage = res.coverage();
    if (res.redundant != 0) {
      Netlist cleaned = dec.netlist();
      (void)remove_redundancies(mgr, cleaned);
      swept_coverage = run_atpg(mgr, cleaned).coverage();
    }
    std::printf("%-9s | %7zu %9zu %9zu %10zu %8.2f%% | %10.2f%%\n", b.name.c_str(),
                res.total_faults, res.detected_by_random, res.detected_by_exact,
                res.redundant, 100.0 * res.coverage(), 100.0 * swept_coverage);
    std::fflush(stdout);
    all_full &= swept_coverage == 1.0;
  }
  print_rule(85);
  std::printf("all netlists 100%% testable (after sweep where needed): %s\n",
              all_full ? "yes" : "NO");
  return all_full ? 0 : 1;
}
