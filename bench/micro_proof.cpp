// Proof-layer perf gate: the cost of carrying DRAT proofs through the
// two-copy SAT decomposability checks (bidec/sat_check). Fixed protocol
// like perf_gate/micro_satdec (pinned seeds, median of reps, JSON output,
// no google-benchmark), emitting BENCH_proof.json for compare_perf.py.
//
// Three policies over the identical suite of pinned random ISFs:
//   off    baseline — no proof machinery anywhere
//   log    DRAT log armed on every solver (the "--proof=log" price)
//   check  every decomposability UNSAT re-validated by the independent
//          backward checker (the "--proof=check" price, informational)
//
// The binary self-gates: logging overhead above 15% of the off baseline is
// a failure — an armed-but-unchecked log must stay one amortized append per
// learned clause, and this gate is what keeps that property from eroding.
//
// Usage:
//   micro_proof [--quick] [--reps N] [--out-dir DIR] [--commit HASH]
//               [--max-log-overhead F]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "bdd/bdd.h"
#include "bidec/sat_check.h"
#include "proof/policy.h"
#include "tt/truth_table.h"

namespace bidec::proofbench {
namespace {

using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

constexpr unsigned kNumVars = 10;
constexpr unsigned kNumFuncs = 6;

/// The pinned workload: random 10-var ISFs (seeded, machine-independent)
/// swept over a fixed list of (xa, xb) variable-set pairs, OR and AND
/// checks both. Everything is materialized once; the timed region is pure
/// sat_check traffic.
struct Workload {
  std::vector<Isf> funcs;
  std::vector<std::pair<std::vector<unsigned>, std::vector<unsigned>>> pairs;
};

Workload build_workload(BddManager& mgr) {
  Workload w;
  std::mt19937_64 rng(0xb1dec0de);
  for (unsigned i = 0; i < kNumFuncs; ++i) {
    const TruthTable on = TruthTable::random(kNumVars, rng, 0.5);
    const TruthTable dc = TruthTable::random(kNumVars, rng, 0.2);
    w.funcs.emplace_back((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
  }
  // Genuinely decomposable functions, so the suite carries UNSAT verdicts
  // (decomposable <=> the two-copy formula is UNSAT) and the log/check
  // policies pay their real price. Each half is a random 5-var function of
  // its own variable block, combined with OR (or AND for odd i).
  const std::vector<unsigned> lo = {0, 1, 2, 3, 4};
  const std::vector<unsigned> hi = {5, 6, 7, 8, 9};
  for (unsigned i = 0; i < 3; ++i) {
    const std::uint32_t g_bits = static_cast<std::uint32_t>(rng());
    const std::uint32_t h_bits = static_cast<std::uint32_t>(rng());
    const TruthTable f =
        TruthTable::from_function(kNumVars, [&](std::uint64_t m) {
          const bool g = (g_bits >> (m & 31u)) & 1u;
          const bool h = (h_bits >> (m >> 5)) & 1u;
          return i % 2 == 0 ? g || h : g && h;
        });
    w.funcs.emplace_back(f.to_bdd(mgr), (~f).to_bdd(mgr));
  }
  w.pairs = {
      {{0}, {1}},          {{2}, {3}},       {{4}, {9}},
      {{0, 1}, {2, 3}},    {{4, 5}, {6, 7}}, {{0, 2, 4}, {1, 3, 5}},
      {{0, 1, 2, 3}, {6, 7, 8, 9}},          {lo, hi},
  };
  return w;
}

struct PassResult {
  std::uint64_t decomposable = 0;  ///< verdict checksum across the suite
  proof::ProofStats proof;
};

/// One full sweep of the suite under `policy`. The verdict count is the
/// determinism checksum: it must be identical across reps and policies.
PassResult run_pass(const Workload& w, proof::ProofPolicy policy) {
  PassResult res;
  for (const Isf& f : w.funcs) {
    for (const auto& [xa, xb] : w.pairs) {
      if (sat_check_or_decomposable(f, xa, xb, policy, &res.proof)) {
        ++res.decomposable;
      }
      if (sat_check_and_decomposable(f, xa, xb, policy, &res.proof)) {
        ++res.decomposable;
      }
    }
  }
  return res;
}

struct BenchRecord {
  std::string name;
  double ns_per_op = 0.0;  ///< median wall ns per full suite sweep
  unsigned reps = 0;
  std::uint64_t proof_clauses = 0;
  std::uint64_t checked_unsat = 0;
};

bool run_timed(const Workload& w, proof::ProofPolicy policy, unsigned reps,
               std::uint64_t expect_verdicts, BenchRecord& out) {
  std::vector<double> wall_ms;
  for (unsigned r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    const PassResult res = run_pass(w, policy);
    wall_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
    if (res.decomposable != expect_verdicts) {
      std::fprintf(stderr,
                   "micro_proof: policy %s changed verdicts (%llu vs %llu) — "
                   "proofs must observe, never steer\n",
                   proof::to_string(policy),
                   static_cast<unsigned long long>(res.decomposable),
                   static_cast<unsigned long long>(expect_verdicts));
      return false;
    }
    if (policy != proof::ProofPolicy::kOff && res.proof.logged_inputs == 0) {
      std::fprintf(stderr, "micro_proof: policy %s logged nothing\n",
                   proof::to_string(policy));
      return false;
    }
    if (policy == proof::ProofPolicy::kCheck &&
        (res.proof.failed_checks != 0 || res.proof.checked_unsat == 0)) {
      std::fprintf(stderr,
                   "micro_proof: check policy validated %llu UNSATs with %llu "
                   "failures — the suite must exercise the checker cleanly\n",
                   static_cast<unsigned long long>(res.proof.checked_unsat),
                   static_cast<unsigned long long>(res.proof.failed_checks));
      return false;
    }
    if (r == 0) {
      out.proof_clauses = res.proof.proof_clauses;
      out.checked_unsat = res.proof.checked_unsat;
    }
  }
  std::sort(wall_ms.begin(), wall_ms.end());
  out.name = std::string("proof_satcheck_") + proof::to_string(policy);
  out.ns_per_op = wall_ms[wall_ms.size() / 2] * 1e6;
  out.reps = reps;
  std::printf("%-24s %10.2f ms  (%llu proof clauses, %llu checked, %u reps)\n",
              out.name.c_str(), out.ns_per_op / 1e6,
              static_cast<unsigned long long>(out.proof_clauses),
              static_cast<unsigned long long>(out.checked_unsat), reps);
  return true;
}

void write_suite(const std::string& path, const std::string& commit,
                 const std::string& mode,
                 const std::vector<BenchRecord>& records) {
  std::string out = "{\n";
  out += "  \"schema\": 1,\n";
  out += "  \"suite\": \"proof\",\n";
  out += "  \"commit\": \"" + commit + "\",\n";
  out += "  \"mode\": \"" + mode + "\",\n";
  out += "  \"benches\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"ns_per_op\": %.1f, \"reps\": %u, "
                  "\"proof_clauses\": %llu, \"checked_unsat\": %llu}",
                  r.name.c_str(), r.ns_per_op, r.reps,
                  static_cast<unsigned long long>(r.proof_clauses),
                  static_cast<unsigned long long>(r.checked_unsat));
    out += buf;
    if (i + 1 != records.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "micro_proof: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << out;
  std::printf("wrote %s (%zu benches)\n", path.c_str(), records.size());
}

}  // namespace
}  // namespace bidec::proofbench

int main(int argc, char** argv) {
  using namespace bidec;
  using namespace bidec::proofbench;

  bool quick = false;
  unsigned reps_override = 0;
  double max_log_overhead = 0.15;
  std::string out_dir = ".";
  std::string commit;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps_override = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--commit" && i + 1 < argc) {
      commit = argv[++i];
    } else if (arg == "--max-log-overhead" && i + 1 < argc) {
      max_log_overhead = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: micro_proof [--quick] [--reps N] [--out-dir DIR] "
                   "[--commit HASH] [--max-log-overhead F]\n");
      return 1;
    }
  }
  if (commit.empty()) {
    const char* sha = std::getenv("GITHUB_SHA");
    commit = sha != nullptr ? sha : "unknown";
  }
  const std::string mode = quick ? "quick" : "full";
  const unsigned reps = reps_override != 0 ? reps_override : (quick ? 5u : 9u);

  BddManager mgr(kNumVars);
  const Workload w = build_workload(mgr);

  // Reference sweep: pins the verdict checksum and warms up allocator and
  // caches so the off-policy timing is not paying first-touch costs.
  const std::uint64_t expect = run_pass(w, proof::ProofPolicy::kOff).decomposable;
  std::printf("suite: %zu ISFs x %zu pairs x {or,and}, %llu decomposable\n",
              w.funcs.size(), w.pairs.size(),
              static_cast<unsigned long long>(expect));

  std::vector<BenchRecord> records(3);
  if (!run_timed(w, proof::ProofPolicy::kOff, reps, expect, records[0]) ||
      !run_timed(w, proof::ProofPolicy::kLog, reps, expect, records[1]) ||
      !run_timed(w, proof::ProofPolicy::kCheck, reps, expect, records[2])) {
    return 1;
  }

  const double overhead =
      records[1].ns_per_op / records[0].ns_per_op - 1.0;
  std::printf("log overhead: %+.1f%% (gate: <= %.0f%%); check cost: %+.1f%%\n",
              overhead * 100.0, max_log_overhead * 100.0,
              (records[2].ns_per_op / records[0].ns_per_op - 1.0) * 100.0);
  if (overhead > max_log_overhead) {
    std::fprintf(stderr,
                 "micro_proof: DRAT logging overhead %.1f%% exceeds the "
                 "%.0f%% gate — the armed-but-unchecked path regressed\n",
                 overhead * 100.0, max_log_overhead * 100.0);
    return 1;
  }

  write_suite(out_dir + "/BENCH_proof.json", commit, mode, records);
  return 0;
}
