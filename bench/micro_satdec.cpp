// SAT-engine perf gate: pinned benchgen multipliers through the batch
// engine with engine=sat, fixed protocol (median-of-reps wall time per
// job), emitting BENCH_satdec.json in the schema bench/compare_perf.py
// diffs against the checked-in baseline. Like perf_gate and micro_server
// this avoids google-benchmark so the protocol stays under our control.
//
// Two parts per run:
//   timed:   mul4x4 and mul5x5 (and mul6x6 in full mode) decomposed with
//            the SAT engine and SAT-verified; the median repetition's wall
//            time becomes ns_per_op. Netlist stats must be identical
//            across repetitions — a nondeterministic engine fails the
//            bench before it can pollute the numbers.
//   ceiling: the headline claim of the SAT engine, asserted rather than
//            timed. mul6x6 under engine=bdd with the 50k node budget must
//            NOT finish ok (the BDD ceiling is real), and the same job
//            under engine=sat must finish ok with the SAT verifier green.
//            --skip-ceiling disables this self-gate for exploratory runs.
//
// Usage:
//   micro_satdec [--quick] [--reps N] [--out-dir DIR] [--commit HASH]
//                [--skip-ceiling]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/benchgen.h"
#include "engine/batch_engine.h"
#include "io/blif.h"

namespace bidec::satbench {
namespace {

using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

struct Case {
  unsigned na = 0;
  unsigned nb = 0;
  unsigned reps_full = 0;
  unsigned reps_quick = 0;
  std::string path;  ///< generated BLIF, filled in by write_cases()

  [[nodiscard]] std::string name() const {
    return "mul" + std::to_string(na) + "x" + std::to_string(nb);
  }
};

/// Generate the pinned multiplier BLIFs under `dir` (benchgen is
/// deterministic, so the inputs are identical on every run and machine).
void write_cases(std::vector<Case>& cases, const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  for (Case& c : cases) {
    const fs::path p = dir / (c.name() + ".blif");
    save_blif(multiplier_netlist(c.na, c.nb), c.name(), p.string());
    c.path = p.string();
  }
}

JobSpec sat_spec(const Case& c) {
  JobSpec spec;
  spec.name = c.name();
  spec.source = c.path;
  spec.flow.engine = EngineSelect::kSat;
  spec.verify = VerifyEngine::kSat;
  return spec;
}

JobReport run_job(JobSpec spec) {
  EngineOptions opts;
  opts.num_workers = 1;
  BatchEngine engine(std::move(opts));
  engine.submit(std::move(spec));
  return engine.run().results.front().report;
}

struct BenchRecord {
  std::string name;
  double ns_per_op = 0.0;  ///< median wall ns per decomposed-and-verified job
  unsigned reps = 0;
  std::size_t gates = 0;
  std::uint64_t solves = 0;
  std::uint64_t conflicts = 0;
};

/// Decompose one case `reps` times; median wall becomes the record. Any
/// failed status, failed verifier, or cross-rep stats drift is fatal.
bool run_timed(const Case& c, unsigned reps, BenchRecord& out) {
  std::vector<double> wall_ms;
  std::size_t gates = 0;
  unsigned levels = 0;
  for (unsigned r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    const JobReport rep = run_job(sat_spec(c));
    wall_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
    if (rep.status != JobStatus::kOk || rep.sat_verdict != 1 ||
        !rep.sat_engine) {
      std::fprintf(stderr, "micro_satdec: %s rep %u failed (%s)\n",
                   c.name().c_str(), r, rep.error.c_str());
      return false;
    }
    if (r == 0) {
      gates = rep.gates;
      levels = rep.levels;
      out.solves = rep.satdec.solves;
      out.conflicts = rep.satdec.solver.conflicts;
    } else if (rep.gates != gates || rep.levels != levels) {
      std::fprintf(stderr,
                   "micro_satdec: %s nondeterministic across reps "
                   "(%zu/%u vs %zu/%u gates/levels)\n",
                   c.name().c_str(), rep.gates, rep.levels, gates, levels);
      return false;
    }
  }
  std::sort(wall_ms.begin(), wall_ms.end());
  out.name = "satdec_sat_" + c.name();
  out.ns_per_op = wall_ms[wall_ms.size() / 2] * 1e6;
  out.reps = reps;
  out.gates = gates;
  std::printf("%-20s %10.1f ms  (%zu gates, %llu solves, %u reps)\n",
              out.name.c_str(), out.ns_per_op / 1e6, gates,
              static_cast<unsigned long long>(out.solves), reps);
  return true;
}

/// The BDD-ceiling assertion: bdd@50k must fail on the case, sat must pass.
bool check_ceiling(const Case& c) {
  JobSpec bdd = sat_spec(c);
  bdd.flow.engine = EngineSelect::kBdd;
  bdd.node_budget = 50000;
  const JobReport lost = run_job(std::move(bdd));
  if (lost.status == JobStatus::kOk) {
    std::fprintf(stderr,
                 "micro_satdec: %s finished under bdd@50k nodes — the BDD "
                 "ceiling moved; re-pin the ceiling case\n",
                 c.name().c_str());
    return false;
  }
  const JobReport won = run_job(sat_spec(c));
  if (won.status != JobStatus::kOk || won.sat_verdict != 1) {
    std::fprintf(stderr, "micro_satdec: %s failed under engine=sat (%s)\n",
                 c.name().c_str(), won.error.c_str());
    return false;
  }
  std::printf("ceiling: %s fails bdd@50k, passes sat (%zu gates) — ok\n",
              c.name().c_str(), won.gates);
  return true;
}

void write_suite(const std::string& path, const std::string& commit,
                 const std::string& mode,
                 const std::vector<BenchRecord>& records) {
  std::string out = "{\n";
  out += "  \"schema\": 1,\n";
  out += "  \"suite\": \"satdec\",\n";
  out += "  \"commit\": \"" + commit + "\",\n";
  out += "  \"mode\": \"" + mode + "\",\n";
  out += "  \"benches\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"ns_per_op\": %.1f, \"reps\": %u, "
                  "\"gates\": %zu, \"solves\": %llu, \"conflicts\": %llu}",
                  r.name.c_str(), r.ns_per_op, r.reps, r.gates,
                  static_cast<unsigned long long>(r.solves),
                  static_cast<unsigned long long>(r.conflicts));
    out += buf;
    if (i + 1 != records.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "micro_satdec: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << out;
  std::printf("wrote %s (%zu benches)\n", path.c_str(), records.size());
}

}  // namespace
}  // namespace bidec::satbench

int main(int argc, char** argv) {
  using namespace bidec;
  using namespace bidec::satbench;

  bool quick = false;
  bool skip_ceiling = false;
  unsigned reps_override = 0;
  std::string out_dir = ".";
  std::string commit;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--skip-ceiling") {
      skip_ceiling = true;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps_override = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--commit" && i + 1 < argc) {
      commit = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: micro_satdec [--quick] [--reps N] [--out-dir DIR] "
                   "[--commit HASH] [--skip-ceiling]\n");
      return 1;
    }
  }
  if (commit.empty()) {
    const char* sha = std::getenv("GITHUB_SHA");
    commit = sha != nullptr ? sha : "unknown";
  }
  const std::string mode = quick ? "quick" : "full";

  // mul6x6 (12 interleaved inputs) sits past the 50k-node BDD ceiling and
  // doubles as the ceiling case; the smaller two stay timed in both modes.
  std::vector<Case> timed = {{4, 4, /*reps_full=*/5, /*reps_quick=*/3},
                             {5, 5, /*reps_full=*/3, /*reps_quick=*/2}};
  Case ceiling{6, 6, /*reps_full=*/1, /*reps_quick=*/1};
  const fs::path dir = fs::path(out_dir) / "satdec_cases";
  write_cases(timed, dir);
  {
    std::vector<Case> one = {ceiling};
    write_cases(one, dir);
    ceiling = one.front();
  }

  std::vector<BenchRecord> records;
  for (const Case& c : timed) {
    const unsigned reps =
        reps_override != 0 ? reps_override : (quick ? c.reps_quick : c.reps_full);
    BenchRecord rec;
    if (!run_timed(c, reps, rec)) return 1;
    records.push_back(std::move(rec));
  }

  if (!skip_ceiling && !check_ceiling(ceiling)) return 1;
  if (skip_ceiling) std::printf("ceiling: skipped (--skip-ceiling)\n");

  write_suite(out_dir + "/BENCH_satdec.json", commit, mode, records);
  return 0;
}
