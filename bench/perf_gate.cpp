// Reproducible performance gate for the BDD substrate and the
// bi-decomposition flow.
//
// Unlike the google-benchmark micro harnesses (micro_bdd.cpp, ...), this
// runner executes a *fixed protocol* — pinned seeds, a fixed repetition
// count, median-of-runs — and emits machine-readable JSON (BENCH_bdd.json,
// BENCH_bidec.json) with per-op nanoseconds plus the kernel-behaviour
// counters (computed-cache hit rate, GC runs / pause time, peak live
// nodes). The emitted files are the trajectory future PRs must not regress:
// bench/compare_perf.py diffs a fresh run against the checked-in baselines
// and fails on >25% regression (see the perf-gate CI job and the README
// "Performance" section).
//
// Usage:
//   perf_gate [--quick] [--reps N] [--out-dir DIR] [--commit HASH] [--only RE]
//
// --quick lowers the repetition count (3 instead of 7) but keeps every
// workload and size identical, so quick-mode numbers are directly
// comparable against full-protocol baselines.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bdd/bdd.h"
#include "benchgen/benchgen.h"
#include "bidec/bidecomposer.h"
#include "tt/truth_table.h"
#include "verify/verifier.h"

namespace bidec::gate {
namespace {

using Clock = std::chrono::steady_clock;

// One repetition's measurement: wall time over `ops` operations plus a
// snapshot of the manager counters taken after the timed region.
struct RepSample {
  double ns_per_op = 0.0;
  std::uint64_t ops = 0;
  BddStats stats;
  std::uint64_t steps = 0;
  std::uint64_t sink = 0;  // anti-DCE checksum; not compared across kernels
};

struct BenchRecord {
  std::string name;
  std::string suite;  // "bdd" or "bidec"
  double ns_per_op_median = 0.0;
  std::uint64_t ops = 0;
  unsigned reps = 0;
  // Kernel-behaviour counters from the median repetition.
  double cache_hit_rate = 0.0;
  double unique_hit_rate = 0.0;
  std::size_t gc_runs = 0;
  double gc_ms = 0.0;
  std::size_t peak_nodes = 0;
  std::uint64_t steps = 0;
};

double hit_rate(std::size_t hits, std::size_t total) {
  return total != 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
}

// Runs `body` `reps` times and folds the samples into one record, taking
// the median repetition by ns_per_op (ties keep the earlier repetition, so
// the protocol is deterministic given deterministic workloads).
template <typename Body>
BenchRecord run_bench(const std::string& name, unsigned reps, Body&& body) {
  std::vector<RepSample> samples;
  samples.reserve(reps);
  for (unsigned r = 0; r < reps; ++r) samples.push_back(body());
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return samples[a].ns_per_op < samples[b].ns_per_op;
  });
  const RepSample& med = samples[order[order.size() / 2]];

  BenchRecord rec;
  rec.name = name;
  rec.ns_per_op_median = med.ns_per_op;
  rec.ops = med.ops;
  rec.reps = reps;
  rec.cache_hit_rate = hit_rate(med.stats.cache_hits, med.stats.cache_lookups);
  rec.unique_hit_rate =
      hit_rate(med.stats.unique_hits, med.stats.unique_hits + med.stats.unique_misses);
  rec.gc_runs = med.stats.gc_runs;
  rec.gc_ms = med.stats.gc_ms;
  rec.peak_nodes = med.stats.peak_nodes;
  rec.steps = med.steps;
  return rec;
}

std::vector<Bdd> random_functions(BddManager& mgr, unsigned nv, unsigned count,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Bdd> fs;
  fs.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    fs.push_back(TruthTable::random(std::min(nv, 12u), rng).to_bdd(mgr));
  }
  return fs;
}

// Measures `ops` applications of `op` over a fresh manager built by
// `setup`. The timed region excludes setup; stats are reset at its start so
// the counters describe only the measured work.
template <typename Setup, typename Op>
RepSample timed_rep(unsigned nv, Setup&& setup, Op&& op) {
  BddManager mgr(nv);
  auto state = setup(mgr);
  mgr.reset_stats();
  RepSample s;
  const Clock::time_point t0 = Clock::now();
  s.ops = op(mgr, state, s.sink);
  const double sec = std::chrono::duration<double>(Clock::now() - t0).count();
  s.ns_per_op = s.ops != 0 ? sec * 1e9 / static_cast<double>(s.ops) : 0.0;
  s.stats = mgr.stats();
  s.steps = mgr.steps_used();
  return s;
}

// --- BDD suite --------------------------------------------------------------

// Pairwise conjunction over random 12-var functions. The _t8 variants run
// the identical protocol with the task-parallel kernel (threads = 8): on
// hosts with fewer hardware threads they measure oversubscription, so
// compare_perf.py only gates the t8-vs-serial speedup when the recorded
// hardware_threads is at least 8.
RepSample rep_and_pairs_threads(unsigned threads) {
  return timed_rep(
      12,
      [threads](BddManager& m) {
        m.set_threads(threads);
        // Grain 1 = no serial trial: the t8 variants stress the fork-join
        // kernel on every operation instead of the adaptive escalation
        // gate (which would keep these micro-ops serial).
        if (threads > 1) m.set_parallel_grain(1);
        return random_functions(m, 12, 20, 101);
      },
      [](BddManager&, std::vector<Bdd>& fs, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (const Bdd& f : fs) {
          for (const Bdd& g : fs) {
            sink += (f & g).id();
            ++ops;
          }
        }
        return ops;
      });
}

RepSample rep_and_pairs() { return rep_and_pairs_threads(1); }
RepSample rep_and_pairs_t8() { return rep_and_pairs_threads(8); }

RepSample rep_ite_threads(unsigned threads) {
  return timed_rep(
      12,
      [threads](BddManager& m) {
        m.set_threads(threads);
        // Grain 1 = no serial trial: the t8 variants stress the fork-join
        // kernel on every operation instead of the adaptive escalation
        // gate (which would keep these micro-ops serial).
        if (threads > 1) m.set_parallel_grain(1);
        return random_functions(m, 12, 12, 102);
      },
      [](BddManager& m, std::vector<Bdd>& fs, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (std::size_t i = 0; i < fs.size(); ++i) {
          for (std::size_t j = 0; j < fs.size(); ++j) {
            const Bdd& h = fs[(i + j) % fs.size()];
            sink += m.ite(fs[i], fs[j], h).id();
            ++ops;
          }
        }
        return ops;
      });
}

RepSample rep_ite() { return rep_ite_threads(1); }
RepSample rep_ite_t8() { return rep_ite_threads(8); }

// De Morgan ladder: negation-heavy alternation of NAND/NOR steps. With a
// traversal-based NOT every rung re-walks the accumulated diagram; with
// complement edges each negation is O(1).
RepSample rep_negation_chain() {
  return timed_rep(
      12, [](BddManager& m) { return random_functions(m, 12, 16, 103); },
      [](BddManager&, std::vector<Bdd>& fs, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        Bdd acc = fs[0];
        for (unsigned round = 0; round < 24; ++round) {
          for (const Bdd& f : fs) {
            acc = (round & 1) != 0 ? ~(acc & f) : ~(acc | f);
            ++ops;
          }
        }
        sink += acc.id();
        return ops;
      });
}

RepSample rep_xor_negated() {
  return timed_rep(
      12, [](BddManager& m) { return random_functions(m, 12, 16, 104); },
      [](BddManager&, std::vector<Bdd>& fs, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (const Bdd& f : fs) {
          for (const Bdd& g : fs) {
            sink += (f ^ ~g).id() + (~f ^ g).id();
            ops += 2;
          }
        }
        return ops;
      });
}

struct QuantState {
  std::vector<Bdd> fs;
  Bdd cube;
};

QuantState quant_state(BddManager& m, std::uint64_t seed) {
  QuantState st;
  st.fs = random_functions(m, 12, 16, seed);
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < m.num_vars(); v += 2) vars.push_back(v);
  st.cube = m.make_cube(vars);
  return st;
}

// Quantification over plain and negated operands: the Theorems 1-4 checks
// quantify complemented intermediates constantly, so ~f quantifications are
// first-class citizens of the workload.
RepSample rep_exists_negated() {
  return timed_rep(
      12, [](BddManager& m) { return quant_state(m, 105); },
      [](BddManager& m, QuantState& st, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (const Bdd& f : st.fs) {
          sink += m.exists(f, st.cube).id() + m.exists(~f, st.cube).id();
          ops += 2;
        }
        return ops;
      });
}

RepSample rep_forall_negated() {
  return timed_rep(
      12, [](BddManager& m) { return quant_state(m, 106); },
      [](BddManager& m, QuantState& st, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (const Bdd& f : st.fs) {
          sink += m.forall(f, st.cube).id() + m.forall(~f, st.cube).id();
          ops += 2;
        }
        return ops;
      });
}

RepSample rep_and_exists() {
  return timed_rep(
      12, [](BddManager& m) { return quant_state(m, 107); },
      [](BddManager& m, QuantState& st, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (std::size_t i = 0; i + 1 < st.fs.size(); ++i) {
          sink += m.and_exists(st.fs[i], st.fs[i + 1], st.cube).id();
          ++ops;
        }
        return ops;
      });
}

// The paper's decomposability checks as written in Theorems 1/2: nested
// sharp + forall/exists over complemented cofactor pairs.
RepSample rep_theorem_check() {
  return timed_rep(
      12, [](BddManager& m) { return quant_state(m, 108); },
      [](BddManager& m, QuantState& st, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (std::size_t i = 0; i + 1 < st.fs.size(); ++i) {
          const Bdd& q = st.fs[i];
          const Bdd& r = st.fs[i + 1];
          const Bdd left = m.exists(q, st.cube);
          const Bdd right = m.forall(~r, st.cube);
          sink += (left - right).id();
          sink += m.and_exists(q, ~r, st.cube).id();
          ops += 4;
        }
        return ops;
      });
}

RepSample rep_compose_threads(unsigned threads) {
  return timed_rep(
      12,
      [threads](BddManager& m) {
        m.set_threads(threads);
        // Grain 1 = no serial trial: the t8 variants stress the fork-join
        // kernel on every operation instead of the adaptive escalation
        // gate (which would keep these micro-ops serial).
        if (threads > 1) m.set_parallel_grain(1);
        return random_functions(m, 12, 12, 109);
      },
      [](BddManager& m, std::vector<Bdd>& fs, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
          sink += m.compose(fs[i], 6, fs[i + 1]).id();
          ++ops;
        }
        return ops;
      });
}

RepSample rep_compose() { return rep_compose_threads(1); }
RepSample rep_compose_t8() { return rep_compose_threads(8); }

RepSample rep_isop() {
  return timed_rep(
      10, [](BddManager& m) { return random_functions(m, 10, 6, 110); },
      [](BddManager& m, std::vector<Bdd>& fs, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (const Bdd& f : fs) {
          sink += m.isop(f, f).size();
          ++ops;
        }
        return ops;
      });
}

RepSample rep_sat_count() {
  return timed_rep(
      12, [](BddManager& m) { return random_functions(m, 12, 8, 111); },
      [](BddManager& m, std::vector<Bdd>& fs, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (const Bdd& f : fs) {
          sink += static_cast<std::uint64_t>(m.sat_count(f));
          sink += static_cast<std::uint64_t>(m.sat_count(~f));
          ops += 2;
        }
        return ops;
      });
}

RepSample rep_symmetric_build() {
  return timed_rep(
      24, [](BddManager&) { return 0; },
      [](BddManager& m, int&, std::uint64_t& sink) -> std::uint64_t {
        std::vector<unsigned> weights;
        for (unsigned k = 8; k <= 16; ++k) weights.push_back(k);
        sink += symmetric_function(m, 24, weights).id();
        return 1;
      });
}

// GC churn: a small threshold forces collections mid-workload; the same
// conjunctions are re-requested after every collection, so a kernel whose
// computed cache survives GC re-derives far less.
RepSample rep_gc_churn() {
  return timed_rep(
      12,
      [](BddManager& m) {
        m.set_gc_threshold(6000);
        return random_functions(m, 12, 10, 112);
      },
      [](BddManager&, std::vector<Bdd>& fs, std::uint64_t& sink) -> std::uint64_t {
        std::uint64_t ops = 0;
        for (unsigned round = 0; round < 30; ++round) {
          for (std::size_t i = 0; i + 1 < fs.size(); ++i) {
            // Dead intermediate (pressure) ...
            (void)(fs[i] ^ fs[i + 1]);
            // ... plus a stable query whose cache line should survive.
            sink += (fs[i] & fs[i + 1]).id();
            ops += 2;
          }
        }
        return ops;
      });
}

// --- bidec suite ------------------------------------------------------------

RepSample rep_bidec(const Benchmark& bench) {
  RepSample s;
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  mgr.reset_stats();
  const Clock::time_point t0 = Clock::now();
  BiDecomposer dec(mgr, {}, bench.input_names());
  const auto names = bench.output_names();
  for (std::size_t o = 0; o < spec.size(); ++o) dec.add_output(names[o], spec[o]);
  dec.finish();
  const double sec = std::chrono::duration<double>(Clock::now() - t0).count();
  s.ops = 1;
  s.ns_per_op = sec * 1e9;
  s.stats = mgr.stats();
  s.steps = mgr.steps_used();
  s.sink = dec.netlist().stats().gates;
  if (!verify_against_isfs(mgr, dec.netlist(), spec).ok) {
    std::fprintf(stderr, "perf_gate: %s failed verification\n", bench.name.c_str());
    std::exit(2);
  }
  return s;
}

// --- JSON emission ----------------------------------------------------------

void append_json(std::string& out, const BenchRecord& r) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "    {\"name\": \"%s\", \"ns_per_op\": %.1f, \"ops\": %llu, "
                "\"reps\": %u, \"cache_hit_rate\": %.4f, \"unique_hit_rate\": "
                "%.4f, \"gc_runs\": %zu, \"gc_ms\": %.3f, \"peak_nodes\": %zu, "
                "\"steps\": %llu}",
                r.name.c_str(), r.ns_per_op_median,
                static_cast<unsigned long long>(r.ops), r.reps, r.cache_hit_rate,
                r.unique_hit_rate, r.gc_runs, r.gc_ms, r.peak_nodes,
                static_cast<unsigned long long>(r.steps));
  out += buf;
}

void write_suite(const std::string& path, const std::string& suite,
                 const std::string& commit, const std::string& mode, unsigned reps,
                 const std::vector<BenchRecord>& records) {
  std::string out = "{\n";
  out += "  \"schema\": 1,\n";
  out += "  \"suite\": \"" + suite + "\",\n";
  out += "  \"commit\": \"" + commit + "\",\n";
  out += "  \"mode\": \"" + mode + "\",\n";
  out += "  \"reps\": " + std::to_string(reps) + ",\n";
  // The _t8 records only measure real parallelism when the recording host
  // had the threads to back them; compare_perf.py reads this to decide
  // whether the t8-speedup gate is meaningful.
  out += "  \"hardware_threads\": " +
         std::to_string(std::max(1u, std::thread::hardware_concurrency())) + ",\n";
  out += "  \"benches\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    append_json(out, records[i]);
    if (i + 1 != records.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "perf_gate: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  f << out;
  std::printf("wrote %s (%zu benches)\n", path.c_str(), records.size());
}

}  // namespace
}  // namespace bidec::gate

int main(int argc, char** argv) {
  using namespace bidec;
  using namespace bidec::gate;

  unsigned reps = 7;
  bool quick = false;
  std::string out_dir = ".";
  std::string commit;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
      reps = 3;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--commit" && i + 1 < argc) {
      commit = argv[++i];
    } else if (arg == "--only" && i + 1 < argc) {
      only = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_gate [--quick] [--reps N] [--out-dir DIR] "
                   "[--commit HASH] [--only SUBSTR]\n");
      return 1;
    }
  }
  if (reps == 0) reps = 1;
  if (commit.empty()) {
    const char* sha = std::getenv("GITHUB_SHA");
    commit = sha != nullptr ? sha : "unknown";
  }
  const std::string mode = quick ? "quick" : "full";

  struct Entry {
    const char* name;
    RepSample (*fn)();
  };
  const Entry bdd_suite[] = {
      {"and_pairs_12", rep_and_pairs},
      {"ite_12", rep_ite},
      {"negation_chain_12", rep_negation_chain},
      {"xor_negated_12", rep_xor_negated},
      {"exists_negated_12", rep_exists_negated},
      {"forall_negated_12", rep_forall_negated},
      {"and_exists_12", rep_and_exists},
      {"theorem_check_12", rep_theorem_check},
      {"compose_12", rep_compose},
      {"isop_10", rep_isop},
      {"sat_count_12", rep_sat_count},
      {"symmetric_24", rep_symmetric_build},
      {"gc_churn_12", rep_gc_churn},
      {"and_pairs_12_t8", rep_and_pairs_t8},
      {"ite_12_t8", rep_ite_t8},
      {"compose_12_t8", rep_compose_t8},
  };

  std::vector<BenchRecord> bdd_records;
  for (const Entry& e : bdd_suite) {
    if (!only.empty() && std::string(e.name).find(only) == std::string::npos) continue;
    BenchRecord rec = run_bench(e.name, reps, e.fn);
    rec.suite = "bdd";
    std::printf("%-24s %12.1f ns/op  cache %.3f  gc %zu  peak %zu\n",
                rec.name.c_str(), rec.ns_per_op_median, rec.cache_hit_rate,
                rec.gc_runs, rec.peak_nodes);
    bdd_records.push_back(std::move(rec));
  }

  const char* bidec_names[] = {"5xp1", "rd84", "9sym", "misex2", "duke2"};
  std::vector<BenchRecord> bidec_records;
  for (const char* name : bidec_names) {
    if (!only.empty() && std::string(name).find(only) == std::string::npos) continue;
    const Benchmark& bench = find_benchmark(name);
    BenchRecord rec =
        run_bench(std::string("bidec_") + name, reps, [&] { return rep_bidec(bench); });
    rec.suite = "bidec";
    std::printf("%-24s %12.1f ns/op  cache %.3f  gc %zu  peak %zu\n",
                rec.name.c_str(), rec.ns_per_op_median, rec.cache_hit_rate,
                rec.gc_runs, rec.peak_nodes);
    bidec_records.push_back(std::move(rec));
  }

  if (!bdd_records.empty()) {
    write_suite(out_dir + "/BENCH_bdd.json", "bdd", commit, mode, reps, bdd_records);
  }
  if (!bidec_records.empty()) {
    write_suite(out_dir + "/BENCH_bidec.json", "bidec", commit, mode, reps,
                bidec_records);
  }
  return 0;
}
