// Reproduction of Table 3 (paper Section 8): BI-DECOMP vs the BDS-like
// BDD-structural flow, plus the weak-only ablation of our own algorithm
// (the paper conjectures BDS "applies only weak bi-decomposition").
// Columns follow the paper: gates, exors, CPU time per flow.
//
// Expected shape: strong bi-decomposition produces fewer gates than both the
// BDD-structural flow and the weak-only ablation, especially on the
// EXOR-intensive rows (9sym, rd84, t481).
#include <cstdio>

#include "common.h"

int main() {
  using namespace bidec;
  using namespace bidec::bench;

  std::printf("Table 3: comparison with the BDS-like flow and the weak-only ablation\n");
  std::printf("(* = synthetic stand-in benchmark; see DESIGN.md Section 4)\n\n");
  std::printf("%-9s | %6s %6s %8s | %6s %6s %8s | %6s %6s %8s | %s\n", "name",
              "gates", "exors", "time,s", "gates", "exors", "time,s", "gates",
              "exors", "time,s", "verdict");
  std::printf("%-9s | %22s | %22s | %22s |\n", "", "BDS-like (dom+MUX)",
              "weak-only BI-DECOMP", "BI-DECOMP (this work)");
  print_rule(120);

  int wins_vs_bds = 0, wins_vs_weak = 0, rows = 0;
  bool all_verified = true;
  for (const Benchmark& b : table3_suite()) {
    const FlowResult bds = run_bds_like(b);
    BidecOptions weak_only;
    weak_only.use_strong = false;
    const FlowResult weak = run_bidecomp(b, weak_only);
    const FlowResult ours = run_bidecomp(b);
    const char* verdict = ours.stats.gates <= bds.stats.gates &&
                                  ours.stats.gates <= weak.stats.gates
                              ? "strong smallest"
                              : "mixed";
    std::printf("%-8s%s | %6zu %6zu %8.2f | %6zu %6zu %8.2f | %6zu %6zu %8.2f | %s\n",
                b.name.c_str(), b.stand_in ? "*" : " ", bds.stats.gates,
                bds.stats.exors, bds.seconds, weak.stats.gates, weak.stats.exors,
                weak.seconds, ours.stats.gates, ours.stats.exors, ours.seconds,
                verdict);
    std::fflush(stdout);
    ++rows;
    if (ours.stats.gates <= bds.stats.gates) ++wins_vs_bds;
    if (ours.stats.gates <= weak.stats.gates) ++wins_vs_weak;
    all_verified &= bds.verified && weak.verified && ours.verified;
  }
  print_rule(120);
  std::printf("BI-DECOMP <= BDS-like gates on %d/%d rows; <= weak-only gates on %d/%d "
              "rows; all verified: %s\n",
              wins_vs_bds, rows, wins_vs_weak, rows, all_verified ? "yes" : "NO");
  std::printf("(paper: BI-DECOMP outperforms BDS, attributed to strong bi-decomposition)\n");
  return all_verified ? 0 : 1;
}
