// Microbenchmarks of the BDD substrate (supports the CPU-time columns of
// Tables 2/3): ITE throughput, quantification, ISOP extraction, the
// operations the decomposability checks are made of.
#include <benchmark/benchmark.h>

#include <random>

#include "bdd/bdd.h"
#include "benchgen/benchgen.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

Bdd random_function(BddManager& mgr, unsigned nv, std::mt19937_64& rng) {
  TruthTable t = TruthTable::random(std::min(nv, 12u), rng);
  return t.to_bdd(mgr);
}

// Per-benchmark substrate counters via the reset_stats() snapshot hook:
// reset at loop entry so the reported rates describe only the measured
// region (construction work and prior benchmarks don't bleed in).
void report_bdd_counters(benchmark::State& state, const BddManager& mgr) {
  const BddStats s = mgr.stats();  // copy = snapshot
  const std::size_t unique_total = s.unique_hits + s.unique_misses;
  state.counters["cache_hit_rate"] =
      s.cache_lookups != 0 ? static_cast<double>(s.cache_hits) / s.cache_lookups : 0.0;
  state.counters["unique_hit_rate"] =
      unique_total != 0 ? static_cast<double>(s.unique_hits) / unique_total : 0.0;
  state.counters["peak_nodes"] = static_cast<double>(s.peak_nodes);
  state.counters["steps"] = benchmark::Counter(
      static_cast<double>(mgr.steps_used()), benchmark::Counter::kIsRate);
}

void BM_BddAnd(benchmark::State& state) {
  const unsigned nv = static_cast<unsigned>(state.range(0));
  BddManager mgr(nv);
  std::mt19937_64 rng(1);
  const Bdd f = random_function(mgr, nv, rng);
  const Bdd g = random_function(mgr, nv, rng);
  mgr.reset_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f & g);
  }
  report_bdd_counters(state, mgr);
}
BENCHMARK(BM_BddAnd)->Arg(8)->Arg(10)->Arg(12);

void BM_BddIte(benchmark::State& state) {
  const unsigned nv = static_cast<unsigned>(state.range(0));
  BddManager mgr(nv);
  std::mt19937_64 rng(2);
  const Bdd f = random_function(mgr, nv, rng);
  const Bdd g = random_function(mgr, nv, rng);
  const Bdd h = random_function(mgr, nv, rng);
  mgr.reset_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.ite(f, g, h));
  }
  report_bdd_counters(state, mgr);
}
BENCHMARK(BM_BddIte)->Arg(8)->Arg(12);

void BM_BddExists(benchmark::State& state) {
  const unsigned nv = 12;
  BddManager mgr(nv);
  std::mt19937_64 rng(3);
  const Bdd f = random_function(mgr, nv, rng);
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < static_cast<unsigned>(state.range(0)); ++v) {
    vars.push_back(v * 2);
  }
  const Bdd cube = mgr.make_cube(vars);
  mgr.reset_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.exists(f, cube));
  }
  report_bdd_counters(state, mgr);
}
BENCHMARK(BM_BddExists)->Arg(1)->Arg(3)->Arg(6);

void BM_BddAndExists(benchmark::State& state) {
  const unsigned nv = 12;
  BddManager mgr(nv);
  std::mt19937_64 rng(4);
  const Bdd f = random_function(mgr, nv, rng);
  const Bdd g = random_function(mgr, nv, rng);
  const Bdd cube = mgr.make_cube({0, 2, 4, 6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.and_exists(f, g, cube));
  }
}
BENCHMARK(BM_BddAndExists);

void BM_BddSymmetricConstruction(benchmark::State& state) {
  const unsigned nv = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    BddManager mgr(nv);
    std::vector<unsigned> weights;
    for (unsigned k = nv / 3; k <= 2 * nv / 3; ++k) weights.push_back(k);
    benchmark::DoNotOptimize(symmetric_function(mgr, nv, weights));
  }
}
BENCHMARK(BM_BddSymmetricConstruction)->Arg(9)->Arg(16)->Arg(24);

void BM_BddIsop(benchmark::State& state) {
  BddManager mgr(10);
  std::mt19937_64 rng(5);
  const Bdd f = random_function(mgr, 10, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.isop(f, f));
  }
}
BENCHMARK(BM_BddIsop);

void BM_BddSatCount(benchmark::State& state) {
  BddManager mgr(12);
  std::mt19937_64 rng(6);
  const Bdd f = random_function(mgr, 12, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.sat_count(f));
  }
}
BENCHMARK(BM_BddSatCount);

void BM_TruthTableToBdd(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const TruthTable t = TruthTable::random(static_cast<unsigned>(state.range(0)), rng);
  for (auto _ : state) {
    BddManager mgr(static_cast<unsigned>(state.range(0)));
    benchmark::DoNotOptimize(t.to_bdd(mgr));
  }
}
BENCHMARK(BM_TruthTableToBdd)->Arg(8)->Arg(12);

}  // namespace
}  // namespace bidec

BENCHMARK_MAIN();
