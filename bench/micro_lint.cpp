// Microbenchmarks of the static-analysis subsystem: BLIF parsing into the
// lenient RawNetlist IR, full netlist linting at several design sizes, the
// Netlist -> RawNetlist adapter, and BddManager::audit(). Gate counts are
// reported as items so throughput shows up as gates/second.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "benchgen/benchgen.h"
#include "bidec/flow.h"
#include "lint/netlist_lint.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

/// A clean synthetic design: a balanced reduction tree of alternating
/// AND/XOR/OR gates over `inputs` primary inputs (inputs - 1 gates, plus an
/// output buffer), emitted as BLIF text.
std::string tree_blif(unsigned inputs) {
  std::ostringstream out;
  out << ".inputs";
  for (unsigned i = 0; i < inputs; ++i) out << " i" << i;
  out << "\n.outputs f\n";
  std::vector<std::string> layer;
  layer.reserve(inputs);
  for (unsigned i = 0; i < inputs; ++i) layer.push_back(numbered_name("i", i));
  unsigned next_id = 0;
  while (layer.size() > 1) {
    std::vector<std::string> reduced;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const std::string name = numbered_name("t", next_id++);
      out << ".names " << layer[i] << " " << layer[i + 1] << " " << name << "\n";
      switch (next_id % 3) {
        case 0: out << "11 1\n"; break;
        case 1: out << "10 1\n01 1\n"; break;
        default: out << "1- 1\n-1 1\n"; break;
      }
      reduced.push_back(name);
    }
    if (layer.size() % 2 == 1) reduced.push_back(layer.back());
    layer.swap(reduced);
  }
  out << ".names " << layer.front() << " f\n1 1\n.end\n";
  return out.str();
}

void BM_ParseBlif(benchmark::State& state) {
  const std::string blif = tree_blif(static_cast<unsigned>(state.range(0)));
  std::size_t gates = 0;
  for (auto _ : state) {
    const RawNetlist net = RawNetlist::parse_blif_string(blif);
    gates = net.gates.size();
    benchmark::DoNotOptimize(net.gates.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * gates));
}
BENCHMARK(BM_ParseBlif)->Arg(64)->Arg(1024)->Arg(8192);

void BM_LintCleanTree(benchmark::State& state) {
  const RawNetlist net =
      RawNetlist::parse_blif_string(tree_blif(static_cast<unsigned>(state.range(0))));
  for (auto _ : state) {
    const LintReport rep = lint_netlist(net);
    benchmark::DoNotOptimize(rep.clean());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * net.gates.size()));
}
BENCHMARK(BM_LintCleanTree)->Arg(64)->Arg(1024)->Arg(8192);

void BM_LintWithSupportCones(benchmark::State& state) {
  // The opt-in NL109 structural pass adds a per-gate support bitset sweep;
  // measure its overhead against BM_LintCleanTree at the same size.
  const RawNetlist net =
      RawNetlist::parse_blif_string(tree_blif(static_cast<unsigned>(state.range(0))));
  NetlistLintOptions options;
  options.check_support = true;
  for (auto _ : state) {
    const LintReport rep = lint_netlist(net, options);
    benchmark::DoNotOptimize(rep.findings().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * net.gates.size()));
}
BENCHMARK(BM_LintWithSupportCones)->Arg(64)->Arg(1024)->Arg(8192);

void BM_LintSynthesizedBenchmark(benchmark::State& state) {
  // End-to-end shape on a real flow output: strict Netlist -> RawNetlist
  // adapter plus the full rule sweep, as the --lint gate runs it per job.
  const Benchmark& bench = find_benchmark("misex2");
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  const FlowResult res = synthesize_bidecomp(mgr, spec, bench.input_names(),
                                             bench.output_names(), FlowOptions{});
  for (auto _ : state) {
    const LintReport rep = lint_netlist(res.netlist);
    benchmark::DoNotOptimize(rep.clean());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * res.netlist.num_nodes()));
}
BENCHMARK(BM_LintSynthesizedBenchmark);

void BM_BddAudit(benchmark::State& state) {
  // Audit cost scales with the node store; populate it with a decomposition
  // workload first, then measure the read-only sweep.
  const Benchmark& bench = find_benchmark(state.range(0) == 0 ? "9sym" : "misex2");
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  const FlowResult res = synthesize_bidecomp(mgr, spec, bench.input_names(),
                                             bench.output_names(), FlowOptions{});
  benchmark::DoNotOptimize(res.netlist.num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.audit().empty());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * mgr.live_node_count()));
}
BENCHMARK(BM_BddAudit)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bidec

BENCHMARK_MAIN();
