#!/usr/bin/env python3
"""Compare a perf_gate run against checked-in baselines.

Usage:
    compare_perf.py --baseline-dir . --current-dir build/perf [--threshold 0.25]

Reads BENCH_bdd.json / BENCH_bidec.json from both directories and fails
(exit 1) when any benchmark's median ns/op regressed by more than
`threshold` (default 25%) relative to the baseline. Benchmarks present on
only one side are reported but never fatal: the gate must not block PRs
that add or retire benchmarks.

Only the Python standard library is used, so the script runs anywhere the
CI image has python3.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_suite(path: str) -> dict[str, dict]:
    """Return {bench name: record} from one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return {rec["name"]: rec for rec in doc.get("benches", [])}


def compare_file(baseline_path: str, current_path: str, threshold: float) -> list[str]:
    """Return a list of human-readable regression lines (empty = pass)."""
    baseline = load_suite(baseline_path)
    current = load_suite(current_path)
    regressions: list[str] = []

    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"  ~ {name}: only in baseline (retired?)")
            continue
        if name not in baseline:
            print(f"  ~ {name}: new benchmark, no baseline yet")
            continue
        base_ns = float(baseline[name]["ns_per_op"])
        cur_ns = float(current[name]["ns_per_op"])
        if base_ns <= 0.0:
            continue
        ratio = cur_ns / base_ns
        marker = "ok"
        if ratio > 1.0 + threshold:
            marker = "REGRESSION"
            regressions.append(
                f"{name}: {base_ns:.1f} -> {cur_ns:.1f} ns/op "
                f"({(ratio - 1.0) * 100.0:+.1f}%, limit +{threshold * 100.0:.0f}%)"
            )
        print(f"  {marker:>10} {name}: {base_ns:.1f} -> {cur_ns:.1f} ns/op ({(ratio - 1.0) * 100.0:+.1f}%)")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the checked-in BENCH_*.json baselines")
    parser.add_argument("--current-dir", required=True,
                        help="directory holding the freshly measured BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional slowdown tolerated before failing (default 0.25)")
    args = parser.parse_args()

    all_regressions: list[str] = []
    compared = 0
    for suite in ("BENCH_bdd.json", "BENCH_bidec.json", "BENCH_server.json",
                  "BENCH_satdec.json", "BENCH_proof.json"):
        baseline_path = os.path.join(args.baseline_dir, suite)
        current_path = os.path.join(args.current_dir, suite)
        if not os.path.exists(baseline_path):
            print(f"~ no baseline {baseline_path}; skipping {suite}")
            continue
        if not os.path.exists(current_path):
            print(f"ERROR: baseline exists but current run produced no {current_path}")
            return 2
        print(f"{suite}:")
        all_regressions.extend(compare_file(baseline_path, current_path, args.threshold))
        compared += 1

    if compared == 0:
        print("ERROR: no suites compared (bad --baseline-dir?)")
        return 2
    if all_regressions:
        print(f"\n{len(all_regressions)} regression(s) beyond the "
              f"{args.threshold * 100.0:.0f}% budget:")
        for line in all_regressions:
            print(f"  {line}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
