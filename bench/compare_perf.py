#!/usr/bin/env python3
"""Compare a perf_gate run against checked-in baselines.

Usage:
    compare_perf.py --baseline-dir . --current-dir build/perf [--threshold 0.25]

Reads BENCH_bdd.json / BENCH_bidec.json from both directories and fails
(exit 1) when any benchmark's median ns/op regressed by more than
`threshold` (default 25%) relative to the baseline. Benchmarks present on
only one side are reported but never fatal: the gate must not block PRs
that add or retire benchmarks.

Only the Python standard library is used, so the script runs anywhere the
CI image has python3.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_doc(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def load_suite(path: str) -> dict[str, dict]:
    """Return {bench name: record} from one BENCH_*.json file."""
    return {rec["name"]: rec for rec in load_doc(path).get("benches", [])}


# The parallel kernel must actually pay off: each _t8 bench is required to
# beat its serial twin by this factor. Only checked when the measuring host
# has at least 8 hardware threads (the JSON header records the count) —
# on smaller hosts the _t8 records measure oversubscription, not speedup.
T8_SPEEDUP_FLOOR = 1.5
T8_PAIRS = {
    "and_pairs_12_t8": "and_pairs_12",
    "ite_12_t8": "ite_12",
    "compose_12_t8": "compose_12",
}


def check_t8_speedup(doc: dict) -> list[str]:
    """Return failure lines for _t8 benches that fall short of the floor."""
    hw = int(doc.get("hardware_threads", 0))
    benches = {rec["name"]: rec for rec in doc.get("benches", [])}
    if hw < 8:
        present = sorted(set(T8_PAIRS) & set(benches))
        if present:
            print(f"  ~ host has {hw} hardware threads; t8 speedup gate skipped")
        return []
    failures: list[str] = []
    for t8_name, serial_name in sorted(T8_PAIRS.items()):
        if t8_name not in benches or serial_name not in benches:
            continue
        serial_ns = float(benches[serial_name]["ns_per_op"])
        t8_ns = float(benches[t8_name]["ns_per_op"])
        if t8_ns <= 0.0:
            continue
        speedup = serial_ns / t8_ns
        marker = "ok" if speedup >= T8_SPEEDUP_FLOOR else "TOO SLOW"
        print(f"  {marker:>10} {t8_name}: {speedup:.2f}x over {serial_name} "
              f"(floor {T8_SPEEDUP_FLOOR:.1f}x)")
        if speedup < T8_SPEEDUP_FLOOR:
            failures.append(
                f"{t8_name}: only {speedup:.2f}x over {serial_name}, "
                f"needs {T8_SPEEDUP_FLOOR:.1f}x"
            )
    return failures


def compare_file(baseline_path: str, current_path: str, threshold: float) -> list[str]:
    """Return a list of human-readable regression lines (empty = pass)."""
    baseline = load_suite(baseline_path)
    current = load_suite(current_path)
    regressions: list[str] = []

    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"  ~ {name}: only in baseline (retired?)")
            continue
        if name not in baseline:
            print(f"  ~ {name}: new benchmark, no baseline yet")
            continue
        base_ns = float(baseline[name]["ns_per_op"])
        cur_ns = float(current[name]["ns_per_op"])
        if base_ns <= 0.0:
            continue
        ratio = cur_ns / base_ns
        marker = "ok"
        if ratio > 1.0 + threshold:
            marker = "REGRESSION"
            regressions.append(
                f"{name}: {base_ns:.1f} -> {cur_ns:.1f} ns/op "
                f"({(ratio - 1.0) * 100.0:+.1f}%, limit +{threshold * 100.0:.0f}%)"
            )
        print(f"  {marker:>10} {name}: {base_ns:.1f} -> {cur_ns:.1f} ns/op ({(ratio - 1.0) * 100.0:+.1f}%)")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the checked-in BENCH_*.json baselines")
    parser.add_argument("--current-dir", required=True,
                        help="directory holding the freshly measured BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional slowdown tolerated before failing (default 0.25)")
    args = parser.parse_args()

    all_regressions: list[str] = []
    compared = 0
    for suite in ("BENCH_bdd.json", "BENCH_bidec.json", "BENCH_server.json",
                  "BENCH_satdec.json", "BENCH_proof.json"):
        baseline_path = os.path.join(args.baseline_dir, suite)
        current_path = os.path.join(args.current_dir, suite)
        if not os.path.exists(baseline_path):
            print(f"~ no baseline {baseline_path}; skipping {suite}")
            continue
        if not os.path.exists(current_path):
            print(f"ERROR: baseline exists but current run produced no {current_path}")
            return 2
        print(f"{suite}:")
        all_regressions.extend(compare_file(baseline_path, current_path, args.threshold))
        if suite == "BENCH_bdd.json":
            all_regressions.extend(check_t8_speedup(load_doc(current_path)))
        compared += 1

    if compared == 0:
        print("ERROR: no suites compared (bad --baseline-dir?)")
        return 2
    if all_regressions:
        print(f"\n{len(all_regressions)} regression(s) beyond the "
              f"{args.threshold * 100.0:.0f}% budget:")
        for line in all_regressions:
            print(f"  {line}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
